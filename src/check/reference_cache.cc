#include "check/reference_cache.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

// ---------------------------------------------------------------- //
// ReferenceStats: derived metrics, longhand
// ---------------------------------------------------------------- //

namespace {

/** The paper's ratios are 0 when the denominator is empty. */
double
safeDivide(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/** Nibble-mode cost of the bursts in @p hist (hist[w] bursts of w
 *  words, each costing 1 + (w-1)/ratio), summed in bucket order. */
double
nibbleCost(const std::vector<std::uint64_t> &hist, double ratio)
{
    double cost = 0.0;
    for (std::size_t w = 1; w < hist.size(); ++w) {
        if (hist[w] != 0) {
            cost += static_cast<double>(hist[w]) *
                    (1.0 + static_cast<double>(w - 1) / ratio);
        }
    }
    return cost;
}

} // namespace

double
ReferenceStats::missRatio() const
{
    return safeDivide(static_cast<double>(misses),
                      static_cast<double>(accesses));
}

double
ReferenceStats::warmMissRatio() const
{
    return safeDivide(static_cast<double>(misses - coldMisses),
                      static_cast<double>(accesses - coldMisses));
}

double
ReferenceStats::trafficRatio() const
{
    return safeDivide(static_cast<double>(wordsFetched),
                      static_cast<double>(accesses));
}

double
ReferenceStats::warmTrafficRatio() const
{
    return safeDivide(static_cast<double>(wordsFetched - coldWords),
                      static_cast<double>(accesses - coldMisses));
}

double
ReferenceStats::nibbleTrafficRatio(double ratio) const
{
    return safeDivide(nibbleCost(burstWords, ratio),
                      static_cast<double>(accesses));
}

double
ReferenceStats::warmNibbleTrafficRatio(double ratio) const
{
    return safeDivide(nibbleCost(burstWords, ratio) -
                          nibbleCost(coldBurstWords, ratio),
                      static_cast<double>(accesses - coldMisses));
}

double
ReferenceStats::ifetchMissRatio() const
{
    return safeDivide(static_cast<double>(ifetchMisses),
                      static_cast<double>(ifetchAccesses));
}

double
ReferenceStats::redundantLoadFraction() const
{
    return safeDivide(static_cast<double>(redundantWords),
                      static_cast<double>(wordsFetched));
}

double
ReferenceStats::totalTrafficRatio() const
{
    return safeDivide(
        static_cast<double>(wordsFetched + writeWords + storeWords +
                            writebackWords),
        static_cast<double>(accesses + writeAccesses));
}

double
ReferenceStats::meanSubBlocksTouched() const
{
    std::uint64_t samples = 0;
    std::uint64_t weighted = 0;
    for (std::size_t k = 0; k < residencyTouched.size(); ++k) {
        samples += residencyTouched[k];
        weighted += residencyTouched[k] * k;
    }
    return safeDivide(static_cast<double>(weighted),
                      static_cast<double>(samples));
}

double
ReferenceStats::neverReferencedFraction(
    std::uint32_t subs_per_block) const
{
    if (subs_per_block == 0)
        return 0.0;
    return 1.0 - meanSubBlocksTouched() /
                     static_cast<double>(subs_per_block);
}

// ---------------------------------------------------------------- //
// Diffing
// ---------------------------------------------------------------- //

namespace {

void
diffCounter(std::vector<std::string> &out, const char *field,
            std::uint64_t expected, std::uint64_t actual)
{
    if (expected != actual) {
        out.push_back(strfmt(
            "%s: reference=%llu engine=%llu", field,
            static_cast<unsigned long long>(expected),
            static_cast<unsigned long long>(actual)));
    }
}

void
diffDouble(std::vector<std::string> &out, const char *field,
           double expected, double actual)
{
    // Exact: both sides divide the same integers in the same order.
    if (expected != actual) {
        out.push_back(strfmt("%s: reference=%.17g engine=%.17g", field,
                             expected, actual));
    }
}

void
diffHistogram(std::vector<std::string> &out, const char *field,
              const std::vector<std::uint64_t> &expected,
              const Distribution &actual)
{
    for (std::size_t v = 0; v < actual.numBuckets(); ++v) {
        const std::uint64_t want =
            v < expected.size() ? expected[v] : 0;
        if (want != actual.bucket(v)) {
            out.push_back(strfmt(
                "%s[%zu]: reference=%llu engine=%llu", field, v,
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(actual.bucket(v))));
        }
    }
    for (std::size_t v = actual.numBuckets(); v < expected.size();
         ++v) {
        if (expected[v] != 0) {
            out.push_back(strfmt(
                "%s[%zu]: reference=%llu engine=out-of-range", field,
                v, static_cast<unsigned long long>(expected[v])));
        }
    }
}

} // namespace

std::vector<std::string>
diffStats(const ReferenceStats &ref, const CacheStats &got)
{
    std::vector<std::string> out;
    diffCounter(out, "accesses", ref.accesses, got.accesses());
    diffCounter(out, "misses", ref.misses, got.misses());
    diffCounter(out, "blockMisses", ref.blockMisses,
                got.blockMisses());
    diffCounter(out, "coldMisses", ref.coldMisses, got.coldMisses());
    diffCounter(out, "ifetchAccesses", ref.ifetchAccesses,
                got.ifetchAccesses());
    diffCounter(out, "ifetchMisses", ref.ifetchMisses,
                got.ifetchMisses());
    diffCounter(out, "writeAccesses", ref.writeAccesses,
                got.writeAccesses());
    diffCounter(out, "writeMisses", ref.writeMisses,
                got.writeMisses());
    diffCounter(out, "wordsFetched", ref.wordsFetched,
                got.wordsFetched());
    diffCounter(out, "coldWords", ref.coldWords,
                got.coldWordsFetched());
    diffCounter(out, "redundantWords", ref.redundantWords,
                got.redundantWordsFetched());
    diffCounter(out, "writeWords", ref.writeWords,
                got.writeWordsFetched());
    diffCounter(out, "storeWords", ref.storeWords, got.storeWords());
    diffCounter(out, "writebackWords", ref.writebackWords,
                got.writebackWords());
    diffCounter(out, "prefetchWords", ref.prefetchWords,
                got.prefetchWords());
    diffCounter(out, "prefetches", ref.prefetches, got.prefetches());
    diffCounter(out, "usefulPrefetches", ref.usefulPrefetches,
                got.usefulPrefetches());
    diffCounter(out, "bursts", ref.bursts, got.bursts());
    diffCounter(out, "evictions", ref.evictions, got.evictions());

    diffHistogram(out, "burstWords", ref.burstWords,
                  got.burstWords());
    diffHistogram(out, "coldBurstWords", ref.coldBurstWords,
                  got.coldBurstWords());
    diffHistogram(out, "residencyTouched", ref.residencyTouched,
                  got.residencyTouched());

    diffDouble(out, "missRatio", ref.missRatio(), got.missRatio());
    diffDouble(out, "warmMissRatio", ref.warmMissRatio(),
               got.warmMissRatio());
    diffDouble(out, "trafficRatio", ref.trafficRatio(),
               got.trafficRatio());
    diffDouble(out, "warmTrafficRatio", ref.warmTrafficRatio(),
               got.warmTrafficRatio());
    const NibbleModeBus nibble;
    diffDouble(out, "nibbleTrafficRatio", ref.nibbleTrafficRatio(),
               got.scaledTrafficRatio(nibble));
    diffDouble(out, "warmNibbleTrafficRatio",
               ref.warmNibbleTrafficRatio(),
               got.warmScaledTrafficRatio(nibble));
    diffDouble(out, "ifetchMissRatio", ref.ifetchMissRatio(),
               got.ifetchMissRatio());
    diffDouble(out, "redundantLoadFraction",
               ref.redundantLoadFraction(),
               got.redundantLoadFraction());
    diffDouble(out, "totalTrafficRatio", ref.totalTrafficRatio(),
               got.totalTrafficRatio());
    diffDouble(out, "meanSubBlocksTouched",
               ref.meanSubBlocksTouched(),
               got.meanSubBlocksTouched());
    return out;
}

std::vector<std::string>
diffCacheStats(const std::string &label, const CacheStats &a,
               const CacheStats &b)
{
    std::vector<std::string> out;
    const auto counter = [&](const char *field, std::uint64_t x,
                             std::uint64_t y) {
        if (x != y) {
            out.push_back(strfmt(
                "%s %s: %llu vs %llu", label.c_str(), field,
                static_cast<unsigned long long>(x),
                static_cast<unsigned long long>(y)));
        }
    };
    counter("accesses", a.accesses(), b.accesses());
    counter("misses", a.misses(), b.misses());
    counter("blockMisses", a.blockMisses(), b.blockMisses());
    counter("coldMisses", a.coldMisses(), b.coldMisses());
    counter("ifetchAccesses", a.ifetchAccesses(), b.ifetchAccesses());
    counter("ifetchMisses", a.ifetchMisses(), b.ifetchMisses());
    counter("writeAccesses", a.writeAccesses(), b.writeAccesses());
    counter("writeMisses", a.writeMisses(), b.writeMisses());
    counter("wordsFetched", a.wordsFetched(), b.wordsFetched());
    counter("coldWords", a.coldWordsFetched(), b.coldWordsFetched());
    counter("redundantWords", a.redundantWordsFetched(),
            b.redundantWordsFetched());
    counter("writeWords", a.writeWordsFetched(),
            b.writeWordsFetched());
    counter("storeWords", a.storeWords(), b.storeWords());
    counter("writebackWords", a.writebackWords(), b.writebackWords());
    counter("prefetchWords", a.prefetchWords(), b.prefetchWords());
    counter("prefetches", a.prefetches(), b.prefetches());
    counter("usefulPrefetches", a.usefulPrefetches(),
            b.usefulPrefetches());
    counter("bursts", a.bursts(), b.bursts());
    counter("evictions", a.evictions(), b.evictions());
    for (std::size_t v = 0; v < a.burstWords().numBuckets() &&
                            v < b.burstWords().numBuckets();
         ++v) {
        counter("burstWords[]", a.burstWords().bucket(v),
                b.burstWords().bucket(v));
    }
    for (std::size_t v = 0; v < a.residencyTouched().numBuckets() &&
                            v < b.residencyTouched().numBuckets();
         ++v) {
        counter("residencyTouched[]", a.residencyTouched().bucket(v),
                b.residencyTouched().bucket(v));
    }
    return out;
}

// ---------------------------------------------------------------- //
// ReferenceCache
// ---------------------------------------------------------------- //

ReferenceCache::ReferenceCache(const CacheConfig &config)
    : config_(config),
      blockSize_(config.blockSize),
      subBlockSize_(config.subBlockSize),
      randomVictims_(config.randomSeed)
{
    occsim_assert(isPowerOfTwo(config.netSize) &&
                      isPowerOfTwo(config.blockSize) &&
                      isPowerOfTwo(config.subBlockSize) &&
                      isPowerOfTwo(config.assoc) &&
                      isPowerOfTwo(config.wordSize),
                  "reference cache dimensions must be powers of two");
    occsim_assert(config.subBlockSize <= config.blockSize &&
                      config.blockSize <= config.netSize &&
                      config.wordSize <= config.subBlockSize,
                  "invalid reference cache geometry");

    const std::uint32_t num_blocks = config.netSize / config.blockSize;
    assoc_ = std::min(config.assoc, num_blocks);
    numSets_ = num_blocks / assoc_;
    numSubs_ = config.blockSize / config.subBlockSize;
    wordsPerSub_ = config.subBlockSize / config.wordSize;

    Frame empty;
    empty.valid.assign(numSubs_, false);
    empty.touched.assign(numSubs_, false);
    empty.dirty.assign(numSubs_, false);
    empty.prefetched.assign(numSubs_, false);
    frames_.assign(numSets_, std::vector<Frame>(assoc_, empty));
    everFilled_.assign(
        numSets_, std::vector<std::vector<bool>>(
                      assoc_, std::vector<bool>(numSubs_, false)));
    order_.resize(numSets_);
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        for (std::uint32_t way = 0; way < assoc_; ++way)
            order_[set].push_back(way);
    }

    stats_.burstWords.assign(
        static_cast<std::size_t>(numSubs_) * wordsPerSub_ + 1, 0);
    stats_.coldBurstWords = stats_.burstWords;
    stats_.residencyTouched.assign(numSubs_ + 1, 0);
}

int
ReferenceCache::findWay(std::uint32_t set, Addr block_addr) const
{
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (frames_[set][way].present &&
            frames_[set][way].tag == block_addr) {
            return static_cast<int>(way);
        }
    }
    return -1;
}

std::uint32_t
ReferenceCache::chooseVictim(std::uint32_t set)
{
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (!frames_[set][way].present)
            return way;
    }
    if (config_.replacement == ReplacementPolicy::Random) {
        return static_cast<std::uint32_t>(
            randomVictims_.below(assoc_));
    }
    return order_[set].front();
}

void
ReferenceCache::noteAccess(std::uint32_t set, std::uint32_t way)
{
    if (config_.replacement != ReplacementPolicy::LRU)
        return;
    std::vector<std::uint32_t> &order = order_[set];
    order.erase(std::find(order.begin(), order.end(), way));
    order.push_back(way);
}

void
ReferenceCache::noteFill(std::uint32_t set, std::uint32_t way)
{
    if (config_.replacement == ReplacementPolicy::Random)
        return;
    std::vector<std::uint32_t> &order = order_[set];
    order.erase(std::find(order.begin(), order.end(), way));
    order.push_back(way);
}

void
ReferenceCache::recordBurst(std::uint32_t sub_blocks, bool counted,
                            bool cold,
                            std::uint32_t redundant_sub_blocks)
{
    const std::uint64_t words =
        static_cast<std::uint64_t>(sub_blocks) * wordsPerSub_;
    if (!counted) {
        stats_.writeWords += words;
        return;
    }
    stats_.wordsFetched += words;
    stats_.redundantWords +=
        static_cast<std::uint64_t>(redundant_sub_blocks) *
        wordsPerSub_;
    ++stats_.bursts;
    ++stats_.burstWords[words];
    if (cold) {
        stats_.coldWords += words;
        ++stats_.coldBurstWords[words];
    }
}

void
ReferenceCache::fetchInto(Frame &frame, std::uint32_t set,
                          std::uint32_t way, std::uint32_t sub_index,
                          bool counted, bool cold)
{
    std::vector<bool> &ever = everFilled_[set][way];
    switch (config_.fetch) {
      case FetchPolicy::Demand:
      case FetchPolicy::PrefetchNextOnMiss: {
        // Demand: exactly the missing sub-block.
        frame.valid[sub_index] = true;
        ever[sub_index] = true;
        recordBurst(1, counted, cold, 0);
        break;
      }
      case FetchPolicy::LoadForward: {
        // One burst covering the target and every subsequent
        // sub-block, re-fetching resident ones redundantly.
        std::uint32_t redundant = 0;
        for (std::uint32_t i = sub_index; i < numSubs_; ++i) {
            if (frame.valid[i])
                ++redundant;
            frame.valid[i] = true;
            ever[i] = true;
        }
        recordBurst(numSubs_ - sub_index, counted, cold, redundant);
        break;
      }
      case FetchPolicy::LoadForwardOptimized: {
        // Only the invalid sub-blocks at or after the target, one
        // burst per contiguous invalid run.
        std::uint32_t run = 0;
        for (std::uint32_t i = sub_index; i < numSubs_; ++i) {
            if (frame.valid[i]) {
                if (run != 0) {
                    recordBurst(run, counted, cold, 0);
                    run = 0;
                }
            } else {
                frame.valid[i] = true;
                ever[i] = true;
                ++run;
            }
        }
        if (run != 0)
            recordBurst(run, counted, cold, 0);
        break;
      }
    }
}

void
ReferenceCache::writebackDirty(Frame &frame)
{
    std::uint32_t dirty_subs = 0;
    for (std::uint32_t i = 0; i < numSubs_; ++i) {
        if (frame.dirty[i]) {
            ++dirty_subs;
            frame.dirty[i] = false;
        }
    }
    if (dirty_subs != 0) {
        stats_.writebackWords +=
            static_cast<std::uint64_t>(dirty_subs) * wordsPerSub_;
    }
}

void
ReferenceCache::endResidency(Frame &frame)
{
    std::uint32_t touched = 0;
    for (std::uint32_t i = 0; i < numSubs_; ++i) {
        if (frame.touched[i])
            ++touched;
    }
    ++stats_.evictions;
    ++stats_.residencyTouched[touched];
    writebackDirty(frame);
}

void
ReferenceCache::access(const MemRef &ref)
{
    const std::uint32_t set = setOf(ref.addr);
    const Addr block_addr = blockAddrOf(ref.addr);
    const std::uint32_t sub = subIndexOf(ref.addr);
    const bool is_write = ref.isWrite();
    const bool is_ifetch = ref.isInstruction();
    const bool copy_back = config_.write == WritePolicy::CopyBack;

    const int way = findWay(set, block_addr);
    if (way >= 0) {
        Frame &frame = frames_[set][way];
        noteAccess(set, static_cast<std::uint32_t>(way));
        frame.touched[sub] = true;
        if (frame.valid[sub]) {
            // Hit.
            if (frame.prefetched[sub]) {
                ++stats_.usefulPrefetches;
                frame.prefetched[sub] = false;
            }
            if (is_write) {
                ++stats_.writeAccesses;
                if (copy_back)
                    frame.dirty[sub] = true;
                else
                    ++stats_.storeWords;
            } else {
                ++stats_.accesses;
                if (is_ifetch)
                    ++stats_.ifetchAccesses;
            }
            return;
        }
        // Sub-block miss: tag present, word absent.
        const bool cold =
            !everFilled_[set][static_cast<std::uint32_t>(way)][sub];
        if (is_write) {
            ++stats_.writeAccesses;
            ++stats_.writeMisses;
        } else {
            ++stats_.accesses;
            ++stats_.misses;
            if (cold)
                ++stats_.coldMisses;
            if (is_ifetch) {
                ++stats_.ifetchAccesses;
                ++stats_.ifetchMisses;
            }
        }
        fetchInto(frame, set, static_cast<std::uint32_t>(way), sub,
                  !is_write, cold);
        frame.prefetched[sub] = false;
        if (is_write) {
            if (copy_back)
                frame.dirty[sub] = true;
            else
                ++stats_.storeWords;
        }
        if (config_.fetch == FetchPolicy::PrefetchNextOnMiss)
            prefetchSequential(ref.addr);
        return;
    }

    // Block miss.
    if (is_write && !config_.writeAllocate) {
        ++stats_.writeAccesses;
        ++stats_.writeMisses;
        ++stats_.storeWords;
        return;
    }

    const std::uint32_t victim = chooseVictim(set);
    Frame &frame = frames_[set][victim];
    if (frame.present)
        endResidency(frame);

    const bool cold = !everFilled_[set][victim][sub];
    if (is_write) {
        ++stats_.writeAccesses;
        ++stats_.writeMisses;
    } else {
        ++stats_.accesses;
        ++stats_.misses;
        ++stats_.blockMisses;
        if (cold)
            ++stats_.coldMisses;
        if (is_ifetch) {
            ++stats_.ifetchAccesses;
            ++stats_.ifetchMisses;
        }
    }

    frame.present = true;
    frame.tag = block_addr;
    frame.valid.assign(numSubs_, false);
    frame.touched.assign(numSubs_, false);
    frame.touched[sub] = true;
    frame.dirty.assign(numSubs_, false);
    frame.prefetched.assign(numSubs_, false);
    noteFill(set, victim);
    fetchInto(frame, set, victim, sub, !is_write, cold);
    if (is_write) {
        if (config_.write == WritePolicy::CopyBack)
            frame.dirty[sub] = true;
        else
            ++stats_.storeWords;
    }
    if (config_.fetch == FetchPolicy::PrefetchNextOnMiss)
        prefetchSequential(ref.addr);
}

void
ReferenceCache::prefetchSequential(Addr miss_addr)
{
    const Addr target = miss_addr + subBlockSize_;
    if (target < miss_addr)
        return;  // wrapped past the top of the address space: no
                 // sequential successor exists, so nothing to prefetch
    const std::uint32_t set = setOf(target);
    const Addr block_addr = blockAddrOf(target);
    const std::uint32_t sub = subIndexOf(target);

    const int way = findWay(set, block_addr);
    if (way >= 0) {
        Frame &frame = frames_[set][way];
        if (frame.valid[sub])
            return;  // already resident, nothing to move
        frame.valid[sub] = true;
        frame.prefetched[sub] = true;
        everFilled_[set][static_cast<std::uint32_t>(way)][sub] = true;
        stats_.wordsFetched += wordsPerSub_;
        ++stats_.bursts;
        ++stats_.burstWords[wordsPerSub_];
        stats_.prefetchWords += wordsPerSub_;
        ++stats_.prefetches;
        return;
    }

    // Allocate a frame for the prefetched block (where pollution
    // occurs); the new residency starts with nothing touched.
    const std::uint32_t victim = chooseVictim(set);
    Frame &frame = frames_[set][victim];
    if (frame.present)
        endResidency(frame);
    frame.present = true;
    frame.tag = block_addr;
    frame.valid.assign(numSubs_, false);
    frame.valid[sub] = true;
    frame.touched.assign(numSubs_, false);
    frame.dirty.assign(numSubs_, false);
    frame.prefetched.assign(numSubs_, false);
    frame.prefetched[sub] = true;
    everFilled_[set][victim][sub] = true;
    noteFill(set, victim);
    stats_.wordsFetched += wordsPerSub_;
    ++stats_.bursts;
    ++stats_.burstWords[wordsPerSub_];
    stats_.prefetchWords += wordsPerSub_;
    ++stats_.prefetches;
}

void
ReferenceCache::finalize()
{
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            Frame &frame = frames_[set][way];
            bool any_touched = false;
            for (std::uint32_t i = 0; i < numSubs_; ++i)
                any_touched = any_touched || frame.touched[i];
            if (frame.present && any_touched) {
                std::uint32_t touched = 0;
                for (std::uint32_t i = 0; i < numSubs_; ++i) {
                    if (frame.touched[i])
                        ++touched;
                }
                ++stats_.evictions;
                ++stats_.residencyTouched[touched];
                frame.touched.assign(numSubs_, false);
            }
            writebackDirty(frame);
        }
    }
}

void
ReferenceCache::run(const std::vector<MemRef> &refs)
{
    for (const MemRef &ref : refs)
        access(ref);
    finalize();
}

} // namespace occsim
