/**
 * @file
 * The property-fuzz loop: generate (config, trace) pairs from a
 * seed, run the differential case for each, and on the first
 * mismatch shrink it and render a replayable repro.
 *
 * Seeding scheme: the master seed yields one 64-bit CASE SEED per
 * case (master.next()); a case seed fully determines its config and
 * trace via independent child generators. A failure report therefore
 * needs only the case seed — `occsim-fuzz --case-seed N` replays it
 * exactly, regardless of how many cases preceded it in the original
 * run.
 */

#ifndef OCCSIM_CHECK_FUZZ_HH
#define OCCSIM_CHECK_FUZZ_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "check/shrink.hh"

namespace occsim {

/** Fuzz-loop knobs. */
struct FuzzOptions
{
    /** Number of (config, trace) cases to run. */
    std::uint64_t cases = 500;

    /** Master seed (fixed in CI so runs are reproducible). */
    std::uint64_t seed = 0x0cc51Full;

    /** References per generated trace. */
    std::size_t refsPerCase = 768;

    /** Progress/failure output; nullptr silences everything. */
    std::ostream *out = nullptr;

    /** Per-case progress lines (needs @ref out). */
    bool verbose = false;

    /** Forwarded to every differential case (fault injection). */
    DiffOptions diff;
};

/** One generated case, fully determined by its case seed. */
struct FuzzCase
{
    std::uint64_t caseSeed = 0;
    CacheConfig config;
    std::shared_ptr<VectorTrace> trace;
};

/** Outcome of a fuzz run. */
struct FuzzSummary
{
    std::uint64_t casesRun = 0;
    std::uint64_t mismatches = 0;

    /** Set when a mismatch was found: */
    std::uint64_t failingCaseSeed = 0;
    std::vector<std::string> diffs;  ///< original (unshrunk) diffs
    ShrinkResult shrunk;
    std::string repro;               ///< reproToString of the shrunk case

    bool passed() const { return mismatches == 0; }
};

/** Materialize the case determined by @p case_seed. */
FuzzCase makeFuzzCase(std::uint64_t case_seed, std::size_t refs_per_case);

/**
 * Run the fuzz loop. Stops at the first mismatch (after shrinking
 * it); a clean run executes all options.cases cases.
 */
FuzzSummary runFuzz(const FuzzOptions &options);

/**
 * Replay a single case by seed (the `--case-seed` path). Runs,
 * and on mismatch shrinks, exactly like the loop.
 */
FuzzSummary replayFuzzCase(std::uint64_t case_seed,
                           const FuzzOptions &options);

} // namespace occsim

#endif // OCCSIM_CHECK_FUZZ_HH
