#include "serve/result_cache.hh"

#include "serve/protocol.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim::serve {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity)
{
    occsim_assert(capacity_ >= 1, "zero-capacity result cache");
}

std::string
ResultCache::key(const std::string &trace_hash, std::uint64_t max_refs,
                 const CacheConfig &config,
                 const ScenarioConfig &scenario)
{
    std::string key = strfmt("%s/%llu/", trace_hash.c_str(),
                             static_cast<unsigned long long>(max_refs)) +
                      canonicalConfigJson(config);
    // "" for the 1-core default: single-cache keys are byte-stable,
    // and a multicore request can never alias one.
    const std::string suffix = canonicalScenarioJson(scenario);
    if (!suffix.empty())
        key += "/" + suffix;
    return key;
}

bool
ResultCache::lookup(const std::string &key, CachedResult &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    order_.splice(order_.begin(), order_, it->second.recency);
    ++hits_;
    out = it->second.value;
    return true;
}

void
ResultCache::insert(const std::string &key, CachedResult value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) != entries_.end())
        return;
    order_.push_front(key);
    entries_.emplace(key,
                     Entry{std::move(value), order_.begin()});
    while (entries_.size() > capacity_) {
        entries_.erase(order_.back());
        order_.pop_back();
    }
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace occsim::serve
