#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim::serve {

namespace {

void setError(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

/** Read exactly @p bytes; false on EOF/error. @p clean_eof reports an
 *  EOF before the first byte (a frame-boundary close). */
bool readAll(int fd, void *data, std::size_t bytes, bool *clean_eof)
{
    char *p = static_cast<char *>(data);
    std::size_t done = 0;
    while (done < bytes) {
        const ssize_t got = ::read(fd, p + done, bytes - done);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0) {
            if (clean_eof)
                *clean_eof = done == 0;
            return false;
        }
        done += static_cast<std::size_t>(got);
    }
    return true;
}

bool writeAll(int fd, const void *data, std::size_t bytes)
{
    const char *p = static_cast<const char *>(data);
    while (bytes > 0) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead
        // of killing the daemon with SIGPIPE.
        const ssize_t put = ::send(fd, p, bytes, MSG_NOSIGNAL);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += put;
        bytes -= static_cast<std::size_t>(put);
    }
    return true;
}

bool parseReplacement(const std::string &name, ReplacementPolicy *out)
{
    if (name == "LRU")
        *out = ReplacementPolicy::LRU;
    else if (name == "FIFO")
        *out = ReplacementPolicy::FIFO;
    else if (name == "Random")
        *out = ReplacementPolicy::Random;
    else
        return false;
    return true;
}

bool parseFetch(const std::string &name, FetchPolicy *out)
{
    if (name == "demand")
        *out = FetchPolicy::Demand;
    else if (name == "load-forward")
        *out = FetchPolicy::LoadForward;
    else if (name == "load-forward-opt")
        *out = FetchPolicy::LoadForwardOptimized;
    else if (name == "prefetch-next")
        *out = FetchPolicy::PrefetchNextOnMiss;
    else
        return false;
    return true;
}

bool parseWrite(const std::string &name, WritePolicy *out)
{
    if (name == "write-through")
        *out = WritePolicy::WriteThrough;
    else if (name == "copy-back")
        *out = WritePolicy::CopyBack;
    else
        return false;
    return true;
}

bool parsePartition(const std::string &name, CachePartition *out)
{
    if (name == "unified")
        *out = CachePartition::Unified;
    else if (name == "split-id")
        *out = CachePartition::SplitID;
    else
        return false;
    return true;
}

/** Fetch a required member of @p kind; nullptr + error otherwise. */
const obs::JsonValue *
member(const obs::JsonValue &object, const char *name,
       obs::JsonValue::Kind kind, std::string *error)
{
    const obs::JsonValue *value = object.find(name);
    if (!value || value->kind != kind) {
        setError(error, strfmt("missing or mistyped field '%s'", name));
        return nullptr;
    }
    return value;
}

} // namespace

FrameStatus
readFrame(int fd, std::string &payload, std::string *error)
{
    std::uint8_t len_bytes[4];
    bool clean_eof = false;
    if (!readAll(fd, len_bytes, sizeof(len_bytes), &clean_eof)) {
        if (clean_eof)
            return FrameStatus::Closed;
        setError(error, "truncated frame header");
        return FrameStatus::Malformed;
    }
    const std::uint32_t length = static_cast<std::uint32_t>(len_bytes[0]) |
                                 static_cast<std::uint32_t>(len_bytes[1]) << 8 |
                                 static_cast<std::uint32_t>(len_bytes[2]) << 16 |
                                 static_cast<std::uint32_t>(len_bytes[3]) << 24;
    if (length > kMaxFramePayload) {
        setError(error, strfmt("frame payload of %u bytes exceeds the "
                               "%u byte cap",
                               length, kMaxFramePayload));
        return FrameStatus::Malformed;
    }
    payload.resize(length);
    if (length > 0 && !readAll(fd, payload.data(), length, nullptr)) {
        setError(error, strfmt("frame truncated mid-payload (promised "
                               "%u bytes)",
                               length));
        return FrameStatus::Malformed;
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size());
    const std::uint8_t len_bytes[4] = {
        static_cast<std::uint8_t>(length),
        static_cast<std::uint8_t>(length >> 8),
        static_cast<std::uint8_t>(length >> 16),
        static_cast<std::uint8_t>(length >> 24),
    };
    return writeAll(fd, len_bytes, sizeof(len_bytes)) &&
           (payload.empty() ||
            writeAll(fd, payload.data(), payload.size()));
}

void
writeConfigJson(obs::JsonWriter &w, const CacheConfig &config)
{
    // Fixed key order — this serialization doubles as the result
    // cache's identity string, so it must be deterministic and must
    // cover every field CacheConfig::operator== compares.
    w.beginObject()
        .kv("net", std::uint64_t{config.netSize})
        .kv("block", std::uint64_t{config.blockSize})
        .kv("sub", std::uint64_t{config.subBlockSize})
        .kv("assoc", std::uint64_t{config.assoc})
        .kv("word", std::uint64_t{config.wordSize})
        .kv("abits", std::uint64_t{config.addressBits})
        .kv("repl", replacementPolicyName(config.replacement))
        .kv("fetch", fetchPolicyName(config.fetch))
        .kv("write", writePolicyName(config.write))
        .kv("walloc", config.writeAllocate)
        .kv("seed", config.randomSeed);
    // Unified configs keep the pre-partition serialization byte for
    // byte (it doubles as their result-cache identity); the key
    // appears exactly when the config differs from a unified one.
    if (config.partition != CachePartition::Unified)
        w.kv("part", cachePartitionName(config.partition));
    w.endObject();
}

std::string
canonicalConfigJson(const CacheConfig &config)
{
    obs::JsonWriter w;
    writeConfigJson(w, config);
    return w.str();
}

std::string
canonicalScenarioJson(const ScenarioConfig &scenario)
{
    if (!scenario.multicore())
        return "";
    obs::JsonWriter w;
    w.beginObject().kv("cores", std::uint64_t{scenario.cores});
    if (!scenario.coreConfigs.empty()) {
        w.key("core_configs").beginArray();
        for (const CacheConfig &config : scenario.coreConfigs)
            writeConfigJson(w, config);
        w.endArray();
    }
    w.endObject();
    return w.str();
}

bool
parseConfigJson(const obs::JsonValue &value, CacheConfig &config,
                std::string *error)
{
    using Kind = obs::JsonValue::Kind;
    if (!value.isObject()) {
        setError(error, "config is not an object");
        return false;
    }

    const obs::JsonValue *net = member(value, "net", Kind::Number, error);
    const obs::JsonValue *block =
        member(value, "block", Kind::Number, error);
    const obs::JsonValue *sub = member(value, "sub", Kind::Number, error);
    const obs::JsonValue *assoc =
        member(value, "assoc", Kind::Number, error);
    const obs::JsonValue *word =
        member(value, "word", Kind::Number, error);
    const obs::JsonValue *abits =
        member(value, "abits", Kind::Number, error);
    const obs::JsonValue *repl =
        member(value, "repl", Kind::String, error);
    const obs::JsonValue *fetch =
        member(value, "fetch", Kind::String, error);
    const obs::JsonValue *write =
        member(value, "write", Kind::String, error);
    const obs::JsonValue *walloc =
        member(value, "walloc", Kind::Bool, error);
    const obs::JsonValue *seed =
        member(value, "seed", Kind::Number, error);
    if (!net || !block || !sub || !assoc || !word || !abits || !repl ||
        !fetch || !write || !walloc || !seed)
        return false;

    config.netSize = static_cast<std::uint32_t>(net->asU64());
    config.blockSize = static_cast<std::uint32_t>(block->asU64());
    config.subBlockSize = static_cast<std::uint32_t>(sub->asU64());
    config.assoc = static_cast<std::uint32_t>(assoc->asU64());
    config.wordSize = static_cast<std::uint32_t>(word->asU64());
    config.addressBits = static_cast<std::uint32_t>(abits->asU64());
    config.writeAllocate = walloc->boolean;
    config.randomSeed = seed->asU64();
    config.partition = CachePartition::Unified;
    if (const obs::JsonValue *part = value.find("part")) {
        if (!part->isString() ||
            !parsePartition(part->text, &config.partition)) {
            setError(error, "unknown cache partition");
            return false;
        }
    }
    if (!parseReplacement(repl->text, &config.replacement)) {
        setError(error,
                 strfmt("unknown replacement policy '%s'",
                        repl->text.c_str()));
        return false;
    }
    if (!parseFetch(fetch->text, &config.fetch)) {
        setError(error, strfmt("unknown fetch policy '%s'",
                               fetch->text.c_str()));
        return false;
    }
    if (!parseWrite(write->text, &config.write)) {
        setError(error, strfmt("unknown write policy '%s'",
                               write->text.c_str()));
        return false;
    }
    return true;
}

void
writeResultJson(obs::JsonWriter &w, const SweepResult &result)
{
    w.beginObject();
    w.key("config");
    writeConfigJson(w, result.config);
    w.kv("gross_bytes", result.grossBytes)
        .kv("miss_ratio", result.missRatio)
        .kv("warm_miss_ratio", result.warmMissRatio)
        .kv("traffic_ratio", result.trafficRatio)
        .kv("warm_traffic_ratio", result.warmTrafficRatio)
        .kv("nibble_traffic_ratio", result.nibbleTrafficRatio)
        .kv("warm_nibble_traffic_ratio", result.warmNibbleTrafficRatio);
    if (result.coherency.active) {
        const CoherencySummary &coh = result.coherency;
        w.key("coherency").beginObject();
        w.kv("cores", std::uint64_t{coh.cores})
            .kv("bus_reads", coh.busReads)
            .kv("bus_rfo", coh.busReadForOwnership)
            .kv("bus_upgrades", coh.busUpgrades)
            .kv("invalidations", coh.invalidations)
            .kv("c2c_transfers", coh.cacheToCacheTransfers)
            .kv("c2c_words", coh.c2cWords)
            .kv("snoop_writeback_words", coh.snoopWritebackWords)
            .kv("inval_per_kiloref", coh.invalidationsPerKiloRef)
            .kv("coherence_traffic_ratio", coh.coherenceTrafficRatio);
        w.key("core_miss_ratios").beginArray();
        for (const double ratio : coh.coreMissRatios)
            w.value(ratio);
        w.endArray().endObject();
    }
    w.endObject();
}

bool
parseResultJson(const obs::JsonValue &value, SweepResult &result,
                std::string *error)
{
    using Kind = obs::JsonValue::Kind;
    if (!value.isObject()) {
        setError(error, "result is not an object");
        return false;
    }
    const obs::JsonValue *config = value.find("config");
    if (!config || !parseConfigJson(*config, result.config, error))
        return false;

    const obs::JsonValue *gross =
        member(value, "gross_bytes", Kind::Number, error);
    const obs::JsonValue *miss =
        member(value, "miss_ratio", Kind::Number, error);
    const obs::JsonValue *warm_miss =
        member(value, "warm_miss_ratio", Kind::Number, error);
    const obs::JsonValue *traffic =
        member(value, "traffic_ratio", Kind::Number, error);
    const obs::JsonValue *warm_traffic =
        member(value, "warm_traffic_ratio", Kind::Number, error);
    const obs::JsonValue *nibble =
        member(value, "nibble_traffic_ratio", Kind::Number, error);
    const obs::JsonValue *warm_nibble =
        member(value, "warm_nibble_traffic_ratio", Kind::Number, error);
    if (!gross || !miss || !warm_miss || !traffic || !warm_traffic ||
        !nibble || !warm_nibble)
        return false;

    result.grossBytes = gross->asU64();
    result.missRatio = miss->number;
    result.warmMissRatio = warm_miss->number;
    result.trafficRatio = traffic->number;
    result.warmTrafficRatio = warm_traffic->number;
    result.nibbleTrafficRatio = nibble->number;
    result.warmNibbleTrafficRatio = warm_nibble->number;

    if (const obs::JsonValue *coh_value = value.find("coherency")) {
        if (!coh_value->isObject()) {
            setError(error, "'coherency' is not an object");
            return false;
        }
        CoherencySummary &coh = result.coherency;
        const obs::JsonValue *cores =
            member(*coh_value, "cores", Kind::Number, error);
        const obs::JsonValue *bus_reads =
            member(*coh_value, "bus_reads", Kind::Number, error);
        const obs::JsonValue *bus_rfo =
            member(*coh_value, "bus_rfo", Kind::Number, error);
        const obs::JsonValue *bus_upgrades =
            member(*coh_value, "bus_upgrades", Kind::Number, error);
        const obs::JsonValue *invalidations =
            member(*coh_value, "invalidations", Kind::Number, error);
        const obs::JsonValue *c2c_transfers =
            member(*coh_value, "c2c_transfers", Kind::Number, error);
        const obs::JsonValue *c2c_words =
            member(*coh_value, "c2c_words", Kind::Number, error);
        const obs::JsonValue *snoop_wb = member(
            *coh_value, "snoop_writeback_words", Kind::Number, error);
        const obs::JsonValue *inval_rate = member(
            *coh_value, "inval_per_kiloref", Kind::Number, error);
        const obs::JsonValue *coh_traffic =
            member(*coh_value, "coherence_traffic_ratio", Kind::Number,
                   error);
        const obs::JsonValue *core_ratios = member(
            *coh_value, "core_miss_ratios", Kind::Array, error);
        if (!cores || !bus_reads || !bus_rfo || !bus_upgrades ||
            !invalidations || !c2c_transfers || !c2c_words ||
            !snoop_wb || !inval_rate || !coh_traffic || !core_ratios)
            return false;
        coh.active = true;
        coh.cores = static_cast<std::uint32_t>(cores->asU64());
        coh.busReads = bus_reads->asU64();
        coh.busReadForOwnership = bus_rfo->asU64();
        coh.busUpgrades = bus_upgrades->asU64();
        coh.invalidations = invalidations->asU64();
        coh.cacheToCacheTransfers = c2c_transfers->asU64();
        coh.c2cWords = c2c_words->asU64();
        coh.snoopWritebackWords = snoop_wb->asU64();
        coh.invalidationsPerKiloRef = inval_rate->number;
        coh.coherenceTrafficRatio = coh_traffic->number;
        for (const obs::JsonValue &item : core_ratios->items) {
            if (!item.isNumber()) {
                setError(error,
                         "'core_miss_ratios' entry is not a number");
                return false;
            }
            coh.coreMissRatios.push_back(item.number);
        }
    }
    return true;
}

bool
parseWireRequest(const std::string &payload, WireRequest &request,
                 std::string *error)
{
    obs::JsonValue root;
    if (!obs::parseJson(payload, root, error))
        return false;
    if (!root.isObject()) {
        setError(error, "request is not a JSON object");
        return false;
    }
    const obs::JsonValue *op =
        member(root, "op", obs::JsonValue::Kind::String, error);
    if (!op)
        return false;
    request.op = op->text;

    if (const obs::JsonValue *traces = root.find("traces")) {
        if (!traces->isArray()) {
            setError(error, "'traces' is not an array");
            return false;
        }
        for (const obs::JsonValue &item : traces->items) {
            if (!item.isString()) {
                setError(error, "'traces' entry is not a string");
                return false;
            }
            request.traces.push_back(item.text);
        }
    }
    if (const obs::JsonValue *configs = root.find("configs")) {
        if (!configs->isArray()) {
            setError(error, "'configs' is not an array");
            return false;
        }
        for (const obs::JsonValue &item : configs->items) {
            CacheConfig config;
            if (!parseConfigJson(item, config, error))
                return false;
            request.configs.push_back(config);
        }
    }
    if (const obs::JsonValue *scenario = root.find("scenario")) {
        if (!scenario->isObject()) {
            setError(error, "'scenario' is not an object");
            return false;
        }
        const obs::JsonValue *cores =
            member(*scenario, "cores", obs::JsonValue::Kind::Number,
                   error);
        if (!cores)
            return false;
        const std::uint64_t n = cores->asU64();
        if (n == 0 || n > 64) {
            setError(error, "'scenario.cores' out of range");
            return false;
        }
        request.scenario.cores = static_cast<std::uint32_t>(n);
        if (const obs::JsonValue *core_configs =
                scenario->find("core_configs")) {
            if (!core_configs->isArray()) {
                setError(error,
                         "'scenario.core_configs' is not an array");
                return false;
            }
            for (const obs::JsonValue &item : core_configs->items) {
                CacheConfig config;
                if (!parseConfigJson(item, config, error))
                    return false;
                request.scenario.coreConfigs.push_back(config);
            }
        }
    }
    if (const obs::JsonValue *max_refs = root.find("max_refs")) {
        if (!max_refs->isNumber()) {
            setError(error, "'max_refs' is not a number");
            return false;
        }
        request.maxRefs = max_refs->asU64();
    }
    if (const obs::JsonValue *priority = root.find("priority")) {
        if (!priority->isNumber()) {
            setError(error, "'priority' is not a number");
            return false;
        }
        request.priority = static_cast<int>(priority->number);
    }
    if (const obs::JsonValue *label = root.find("label")) {
        if (!label->isString()) {
            setError(error, "'label' is not a string");
            return false;
        }
        request.label = label->text;
    }
    return true;
}

std::string
wireRequestJson(const WireRequest &request)
{
    obs::JsonWriter w;
    w.beginObject().kv("op", request.op);
    if (!request.traces.empty()) {
        w.key("traces").beginArray();
        for (const std::string &trace : request.traces)
            w.value(trace);
        w.endArray();
    }
    if (!request.configs.empty()) {
        w.key("configs").beginArray();
        for (const CacheConfig &config : request.configs)
            writeConfigJson(w, config);
        w.endArray();
    }
    if (request.scenario.multicore()) {
        w.key("scenario").beginObject();
        w.kv("cores", std::uint64_t{request.scenario.cores});
        if (!request.scenario.coreConfigs.empty()) {
            w.key("core_configs").beginArray();
            for (const CacheConfig &config :
                 request.scenario.coreConfigs)
                writeConfigJson(w, config);
            w.endArray();
        }
        w.endObject();
    }
    if (request.maxRefs != 0)
        w.kv("max_refs", request.maxRefs);
    if (request.priority != 0)
        w.kv("priority", request.priority);
    if (!request.label.empty())
        w.kv("label", request.label);
    w.endObject();
    return w.str();
}

std::string
errorResponse(const std::string &message)
{
    obs::JsonWriter w;
    w.beginObject()
        .kv("type", "error")
        .kv("message", message)
        .endObject();
    return w.str();
}

int
listenUnix(const std::string &path, std::string *error)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, strfmt("socket path too long (%zu bytes)",
                               path.size()));
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, strfmt("socket failed: %s",
                               std::strerror(errno)));
        return -1;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        setError(error, strfmt("cannot listen on %s: %s", path.c_str(),
                               std::strerror(errno)));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(std::uint16_t port, std::uint16_t *bound_port,
          std::string *error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, strfmt("socket failed: %s",
                               std::strerror(errno)));
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        setError(error, strfmt("cannot listen on port %u: %s", port,
                               std::strerror(errno)));
        ::close(fd);
        return -1;
    }
    if (bound_port) {
        socklen_t len = sizeof(addr);
        if (::getsockname(fd,
                          reinterpret_cast<struct sockaddr *>(&addr),
                          &len) == 0)
            *bound_port = ntohs(addr.sin_port);
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *error)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, strfmt("socket path too long (%zu bytes)",
                               path.size()));
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, strfmt("socket failed: %s",
                               std::strerror(errno)));
        return -1;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, strfmt("cannot connect to %s: %s",
                               path.c_str(), std::strerror(errno)));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(std::uint16_t port, std::string *error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, strfmt("socket failed: %s",
                               std::strerror(errno)));
        return -1;
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, strfmt("cannot connect to port %u: %s", port,
                               std::strerror(errno)));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace occsim::serve
