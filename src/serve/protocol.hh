/**
 * @file
 * Wire protocol for occsim-serve: length-prefixed JSON frames over a
 * Unix or TCP stream socket.
 *
 * Every message — request or response — is one frame:
 *
 *   u32 little-endian payload length | payload (UTF-8 JSON)
 *
 * The length prefix makes the stream self-delimiting without
 * incremental JSON parsing; the 1 MB payload cap bounds what one
 * malformed or hostile client can make the server allocate. Requests
 * are one frame; responses to a sweep are a stream of frames (one
 * "result" per (trace, config) cell as it completes, then one "done"
 * or "error"), so a client watching a long sweep sees results
 * incrementally.
 *
 * Request object:
 *
 *   {"op":"sweep","traces":["<hash-or-name>",...],
 *    "configs":[{...},...],"max_refs":0,"priority":0,"label":"..."}
 *
 * plus the control ops "ping", "list", "stats" and "shutdown" (no
 * trace/config payload). Trace ingestion is deliberately NOT a wire
 * op: trace decoding (trace/trace_file.hh) treats malformed input as
 * fatal, which is correct for a CLI and unacceptable in a daemon —
 * `occsim-serve ingest` runs in its own process instead.
 *
 * The CacheConfig codec here is also the result cache's identity:
 * canonicalConfigJson() serializes EVERY identity field of the config
 * (including randomSeed, wordSize, addressBits and the I/D partition
 * axis), so two requests share a cache entry exactly when runSweep
 * would be forced to produce bit-identical results for them. The
 * partition key is emitted only for split configs and the scenario
 * object only for multicore requests, so pre-redesign identities and
 * request payloads are byte-stable — and a multicore request can
 * never alias a single-cache cache entry (see canonicalScenarioJson).
 */

#ifndef OCCSIM_SERVE_PROTOCOL_HH
#define OCCSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "coherence/scenario.hh"
#include "multi/sweep_runner.hh"
#include "obs/json.hh"

namespace occsim::serve {

/** Largest accepted frame payload (defends the allocator, not a
 *  protocol limit — a sweep request is a few KB). */
constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/** Outcome of reading one frame from a stream. */
enum class FrameStatus : std::uint8_t {
    Ok = 0,        ///< payload delivered
    Closed = 1,    ///< clean EOF on a frame boundary
    Malformed = 2, ///< oversized length or mid-frame EOF / IO error
};

/**
 * Read one frame from @p fd into @p payload (blocking).
 * Malformed frames set @p error (when non-null).
 */
FrameStatus readFrame(int fd, std::string &payload,
                      std::string *error = nullptr);

/** Write one frame to @p fd. @return false on IO error (e.g. the
 *  peer disconnected) or an oversized payload. */
bool writeFrame(int fd, const std::string &payload);

/** Append @p config as a JSON object to @p w (all identity fields). */
void writeConfigJson(obs::JsonWriter &w, const CacheConfig &config);

/**
 * The canonical serialization of @p config used as the result-cache
 * identity: compact JSON, fixed key order, every identity field.
 */
std::string canonicalConfigJson(const CacheConfig &config);

/**
 * The canonical serialization of a multicore @p scenario, appended
 * to result-cache keys so a multicore request can never alias the
 * single-cache entry of the same config. Returns "" for the 1-core
 * default — pre-scenario keys stay byte-identical.
 */
std::string canonicalScenarioJson(const ScenarioConfig &scenario);

/** Parse a config object written by writeConfigJson (all fields
 *  required). @return false with @p error set on any malformation. */
bool parseConfigJson(const obs::JsonValue &value, CacheConfig &config,
                     std::string *error = nullptr);

/** Append @p result as a JSON object to @p w. Doubles use shortest
 *  round-trip formatting, so the serialized form preserves
 *  bit-identity. */
void writeResultJson(obs::JsonWriter &w, const SweepResult &result);

/** Parse a result object written by writeResultJson. */
bool parseResultJson(const obs::JsonValue &value, SweepResult &result,
                     std::string *error = nullptr);

/** One parsed client request. */
struct WireRequest
{
    std::string op;                   ///< "sweep", "ping", ...
    std::vector<std::string> traces;  ///< corpus hashes or names
    std::vector<CacheConfig> configs;
    /** Multicore scenario; default (1 core) is the single-cache
     *  request shape and is absent from the wire form. */
    ScenarioConfig scenario;
    std::uint64_t maxRefs = 0;
    int priority = 0;   ///< higher runs first among queued requests
    std::string label;  ///< recorded in the manifest
};

/** Parse one request frame. @return false with @p error set when the
 *  payload is not a well-formed request. */
bool parseWireRequest(const std::string &payload, WireRequest &request,
                      std::string *error = nullptr);

/** Serialize @p request as one frame payload. */
std::string wireRequestJson(const WireRequest &request);

/** Build an {"type":"error","message":...} response payload. */
std::string errorResponse(const std::string &message);

/** Listen on a Unix-domain socket at @p path (unlinking any stale
 *  socket first). @return listening fd, or -1 with @p error set. */
int listenUnix(const std::string &path, std::string *error = nullptr);

/** Listen on loopback TCP @p port (0 = ephemeral; @p bound_port
 *  receives the actual port). @return fd or -1 with @p error set. */
int listenTcp(std::uint16_t port, std::uint16_t *bound_port = nullptr,
              std::string *error = nullptr);

/** Connect to a Unix-domain socket. @return fd or -1. */
int connectUnix(const std::string &path, std::string *error = nullptr);

/** Connect to loopback TCP @p port. @return fd or -1. */
int connectTcp(std::uint16_t port, std::string *error = nullptr);

} // namespace occsim::serve

#endif // OCCSIM_SERVE_PROTOCOL_HH
