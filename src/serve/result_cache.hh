/**
 * @file
 * The serve-layer result cache: completed (trace, config) sweep cells
 * keyed by manifest identity.
 *
 * Every exact engine in occsim is bit-identical for a given (trace
 * bytes, config, reference cap) — that is the repo's central testing
 * contract — which makes sweep results perfectly cacheable: the key
 * is the trace's content hash, the reference cap, the canonical
 * serialization of EVERY CacheConfig identity field
 * (serve::canonicalConfigJson), and — for multicore requests — the
 * canonical scenario serialization. Two requests share an entry exactly
 * when runSweep would be forced to produce bit-identical results for
 * them; differ in any identity field (even randomSeed on an LRU
 * config) and the key differs, so the request misses.
 *
 * Values store both the SweepResult and its serialized response
 * payload: a hit replays the exact bytes the first computation sent,
 * so "served from cache" is byte-identical on the wire, not merely
 * value-equal after a re-serialization.
 *
 * Bounded LRU; thread-safe.
 */

#ifndef OCCSIM_SERVE_RESULT_CACHE_HH
#define OCCSIM_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "coherence/scenario.hh"
#include "multi/sweep_runner.hh"

namespace occsim::serve {

/** One cached sweep cell. */
struct CachedResult
{
    SweepResult result;
    std::string payload;  ///< serialized response bytes (wire form)
};

class ResultCache
{
  public:
    /** @param capacity maximum resident entries (>= 1). */
    explicit ResultCache(std::size_t capacity = 4096);

    /** Identity key for one sweep cell. The scenario suffix is
     *  appended only for multicore scenarios, so a multicore request
     *  can never alias the single-cache entry of the same config and
     *  pre-scenario keys stay byte-identical. */
    static std::string key(const std::string &trace_hash,
                           std::uint64_t max_refs,
                           const CacheConfig &config,
                           const ScenarioConfig &scenario = {});

    /** Look up @p key; fills @p out and refreshes recency on a hit. */
    bool lookup(const std::string &key, CachedResult &out);

    /** Insert @p value under @p key (no-op if already present — the
     *  first computation's bytes win, keeping hits byte-stable). */
    void insert(const std::string &key, CachedResult value);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::size_t size() const;

  private:
    using Order = std::list<std::string>;

    struct Entry
    {
        CachedResult value;
        Order::iterator recency;
    };

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    Order order_;  ///< most recent at front
    std::unordered_map<std::string, Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace occsim::serve

#endif // OCCSIM_SERVE_RESULT_CACHE_HH
