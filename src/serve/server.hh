/**
 * @file
 * The occsim sweep server: a long-lived daemon serving concurrent
 * SweepRequests over Unix/TCP sockets from an on-disk trace corpus,
 * with a manifest-keyed result cache.
 *
 * Request lifecycle:
 *
 *   client frame → parse (serve/protocol.hh) → resolve traces against
 *   the corpus (mmap, shared) → per-cell result-cache lookup → cache
 *   hits stream back immediately; misses are split into config tiles
 *   and queued as jobs → dispatcher threads pop jobs (highest
 *   priority first, FIFO within a priority) and run them through
 *   runSweep's packed path on the shared ThreadPool → each finished
 *   cell is serialized once, inserted into the cache, and streamed to
 *   the client in request order.
 *
 * Fairness: the unit of scheduling is a TILE (streamTile configs of
 * one trace), not a whole request, so one giant sweep cannot occupy
 * the pool to the exclusion of small interactive requests — tiles of
 * later-arriving higher-priority requests overtake queued tiles of
 * the big one at every dispatch point. Within one priority the queue
 * is strictly FIFO by arrival sequence.
 *
 * Identity: a cell's cache key is (trace content hash, maxRefs,
 * canonicalConfigJson) — exactly the fields that determine the
 * bit-identical result every engine must produce. Hits replay the
 * first computation's serialized bytes, so repeated requests are
 * byte-identical on the wire.
 *
 * Observability: serve.cache_hit / serve.cache_miss / serve.requests
 * counters, a serve.queue_depth high-water counter, a serve.request
 * stage span per request, and one obs::ServeRecord per request in
 * the run manifest (auditable via occsim-report).
 *
 * Failure containment: a malformed frame or request is answered with
 * an error frame and never reaches an engine; configs are validated
 * with the same rules CacheGeometry enforces fatally; a client that
 * disconnects mid-stream stops its emission but queued tiles still
 * complete and populate the cache (the work is never wasted).
 */

#ifndef OCCSIM_SERVE_SERVER_HH
#define OCCSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "trace/corpus.hh"
#include "util/thread_pool.hh"

namespace occsim::serve {

/** Construction-time server configuration. */
struct ServeOptions
{
    /** Corpus directory (created if missing). Required. */
    std::string corpusDir;

    /** Pool the sweep engines run on; nullptr = globalThreadPool(). */
    ThreadPool *pool = nullptr;

    /** Result-cache capacity in cells. */
    std::size_t cacheCapacity = 4096;

    /** Dispatcher threads draining the job queue. Each runs one tile
     *  at a time through runSweep (which itself parallelizes over the
     *  pool), so this bounds how many requests make progress
     *  concurrently, not total parallelism. */
    unsigned dispatchers = 2;

    /** Socket connections served concurrently; excess connections are
     *  refused with an error frame. */
    std::size_t maxConnections = 64;

    /** Configs per scheduled job — the streaming granularity: a
     *  client sees results every streamTile configs, and fairness
     *  preemption points occur at the same granularity. */
    std::size_t streamTile = 16;

    /** Telemetry sink; nullptr routes to the global registry (subject
     *  to the global enable flag). An explicit sink records
     *  unconditionally — tests use this for isolated counters. */
    obs::Telemetry *telemetry = nullptr;
};

/** Snapshot of server activity (the "stats" wire op). */
struct ServeStats
{
    std::uint64_t requests = 0;
    std::uint64_t sweeps = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t rejected = 0;        ///< malformed/invalid requests
    std::uint64_t queueHighWater = 0;  ///< deepest job queue seen
    std::size_t cacheEntries = 0;
    std::size_t activeConnections = 0;
};

class SweepServer
{
  public:
    explicit SweepServer(ServeOptions options);
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    TraceCorpus &corpus() { return corpus_; }
    ResultCache &cache() { return cache_; }

    /**
     * Serve one request in-process — the socket layer, tests, and
     * the bench drive this directly. @p emit is called once per
     * response payload, in order (results stream as they complete);
     * returning false from @p emit stops further emission (a gone
     * client) without abandoning queued work.
     * @return false when the request was rejected (an error payload
     * was emitted).
     */
    bool execute(const WireRequest &request,
                 const std::function<bool(const std::string &)> &emit);

    /**
     * Serve one established connection until it closes: read frames,
     * execute them, stream responses. Takes ownership of @p fd
     * (closed on return). Public so tests and the protocol fuzzer can
     * drive a server through a socketpair without a listener.
     */
    void handleConnection(int fd);

    /** Listen on a Unix socket and accept in a background thread. */
    bool startUnix(const std::string &path,
                   std::string *error = nullptr);

    /** Listen on loopback TCP @p port (0 = ephemeral; @p bound_port
     *  receives the actual port). */
    bool startTcp(std::uint16_t port,
                  std::uint16_t *bound_port = nullptr,
                  std::string *error = nullptr);

    /** Block until a client issues the "shutdown" op. */
    void waitForShutdown();

    /** Stop accepting, join every connection, drain dispatchers.
     *  Idempotent; also run by the destructor. */
    void stop();

    /** True once a "shutdown" request has been accepted. */
    bool shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    /** Live socket connections (tests assert this returns to zero —
     *  no leaked slots). */
    std::size_t activeConnections() const
    {
        return active_.load(std::memory_order_acquire);
    }

    ServeStats stats();

  private:
    /** One schedulable unit: a tile of configs of one request. */
    struct Job
    {
        int priority = 0;
        std::uint64_t seq = 0;
        std::function<void()> work;
    };

    struct JobOrder
    {
        bool operator()(const Job &a, const Job &b) const
        {
            // priority_queue pops the "largest": higher priority
            // first, then earlier arrival (FIFO).
            if (a.priority != b.priority)
                return a.priority < b.priority;
            return a.seq > b.seq;
        }
    };

    void count(const char *name, std::uint64_t delta);
    void enqueue(Job job);
    void dispatchLoop();
    void acceptLoop(int listen_fd);
    bool executeSweep(
        const WireRequest &request,
        const std::function<bool(const std::string &)> &emit);

    ServeOptions options_;
    TraceCorpus corpus_;
    ResultCache cache_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::priority_queue<Job, std::vector<Job>, JobOrder> queue_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t queueHighWater_ = 0;
    bool draining_ = false;
    std::vector<std::thread> dispatchers_;

    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> listenFds_;
    std::vector<std::thread> acceptThreads_;
    std::atomic<std::size_t> active_{0};

    std::atomic<bool> shutdown_{false};
    std::mutex shutdownMutex_;
    std::condition_variable shutdownCv_;
    std::atomic<bool> stopped_{false};

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> sweeps_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

/** Non-fatal spelling of CacheGeometry's validation: @return "" when
 *  @p config is servable, else the reason a daemon must refuse it. */
std::string validateServeConfig(const CacheConfig &config);

} // namespace occsim::serve

#endif // OCCSIM_SERVE_SERVER_HH
