#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "multi/fused_replay.hh"
#include "multi/sweep_api.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim::serve {

namespace {

/** Cells per request cap: bounds the per-request bookkeeping one
 *  client can demand (a full paper grid over a suite is ~1k cells). */
constexpr std::size_t kMaxRequestCells = 1u << 16;

/**
 * Shared completion state of one sweep request. The handler thread
 * waits on it cell by cell; dispatcher jobs fill it. Jobs hold a
 * shared_ptr, so a handler abandoning its wait (client gone) never
 * leaves a job writing into freed memory.
 */
struct RequestState
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> keys;      ///< cache key per cell
    std::vector<std::string> payloads;  ///< serialized result per cell
    std::vector<char> ready;
    std::string failure;  ///< non-empty: a job failed; abort emission
};

/** Wrap a serialized result payload in its streaming envelope. The
 *  payload bytes are embedded verbatim, so a cache hit replays the
 *  first computation's bytes exactly. */
std::string
resultFrame(const std::string &trace_hash, std::size_t trace_index,
            std::size_t config_index, bool cached,
            const std::string &payload)
{
    std::string out = "{\"type\":\"result\",\"trace\":\"";
    out += trace_hash;
    out += "\",\"trace_index\":";
    out += std::to_string(trace_index);
    out += ",\"config_index\":";
    out += std::to_string(config_index);
    out += ",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"result\":";
    out += payload;
    out += "}";
    return out;
}

} // namespace

std::string
validateServeConfig(const CacheConfig &c)
{
    // The same rules CacheGeometry enforces with fatal(): a daemon
    // must refuse what a CLI may die on.
    if (!isPowerOfTwo(c.netSize) || !isPowerOfTwo(c.blockSize) ||
        !isPowerOfTwo(c.subBlockSize) || !isPowerOfTwo(c.assoc) ||
        !isPowerOfTwo(c.wordSize))
        return "cache dimensions must be non-zero powers of two";
    if (c.subBlockSize > c.blockSize)
        return strfmt("sub-block size %u exceeds block size %u",
                      c.subBlockSize, c.blockSize);
    if (c.blockSize > c.netSize)
        return strfmt("block size %u exceeds net cache size %u",
                      c.blockSize, c.netSize);
    if (c.wordSize > c.subBlockSize)
        return strfmt("word size %u exceeds sub-block size %u",
                      c.wordSize, c.subBlockSize);
    if (c.addressBits == 0 || c.addressBits > 32)
        return strfmt("address bits must be in [1, 32] (got %u)",
                      c.addressBits);
    if (c.addressBits <= floorLog2(c.blockSize))
        return "address space smaller than one block";
    if (c.blockSize / c.subBlockSize > 64)
        return strfmt("more than 64 sub-blocks per block (%u) is "
                      "unsupported",
                      c.blockSize / c.subBlockSize);
    return "";
}

SweepServer::SweepServer(ServeOptions options)
    : options_(std::move(options)), corpus_(options_.corpusDir),
      cache_(options_.cacheCapacity)
{
    if (options_.streamTile == 0)
        options_.streamTile = 16;
    const unsigned dispatchers =
        std::max(1u, options_.dispatchers);
    dispatchers_.reserve(dispatchers);
    for (unsigned d = 0; d < dispatchers; ++d)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
}

SweepServer::~SweepServer()
{
    stop();
}

void
SweepServer::count(const char *name, std::uint64_t delta)
{
    if (options_.telemetry != nullptr)
        options_.telemetry->counterAdd(name, delta);
    else
        OCCSIM_TELEM_COUNT(name, delta);
}

void
SweepServer::enqueue(Job job)
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        job.seq = nextSeq_++;
        queue_.push(std::move(job));
        // queue_depth telemetry is a HIGH-WATER mark: counters are
        // monotonic, so the counter carries the deepest queue ever
        // seen, advanced by deltas.
        const std::uint64_t depth = queue_.size();
        if (depth > queueHighWater_) {
            count("serve.queue_depth", depth - queueHighWater_);
            queueHighWater_ = depth;
        }
    }
    queueCv_.notify_one();
}

void
SweepServer::dispatchLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty()) {
                // Draining and empty: every accepted job has run, so
                // no handler can be left waiting on a cell.
                return;
            }
            job = queue_.top();
            queue_.pop();
        }
        job.work();
    }
}

bool
SweepServer::execute(
    const WireRequest &request,
    const std::function<bool(const std::string &)> &emit)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    count("serve.requests", 1);
    obs::StageTimer span("serve.request", options_.telemetry);

    if (request.op == "ping") {
        emit("{\"type\":\"pong\"}");
        return true;
    }
    if (request.op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        shutdownCv_.notify_all();
        emit("{\"type\":\"ok\"}");
        return true;
    }
    if (request.op == "stats") {
        const ServeStats s = stats();
        obs::JsonWriter w;
        w.beginObject()
            .kv("type", "stats")
            .kv("requests", s.requests)
            .kv("sweeps", s.sweeps)
            .kv("cache_hits", s.cacheHits)
            .kv("cache_misses", s.cacheMisses)
            .kv("cache_entries", std::uint64_t{s.cacheEntries})
            .kv("rejected", s.rejected)
            .kv("queue_high_water", s.queueHighWater)
            .kv("active_connections",
                std::uint64_t{s.activeConnections})
            .endObject();
        emit(w.str());
        return true;
    }
    if (request.op == "list") {
        std::string error;
        const std::vector<CorpusEntry> all = corpus_.entries(&error);
        if (!error.empty()) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            emit(errorResponse(error));
            return false;
        }
        obs::JsonWriter w;
        w.beginObject().kv("type", "list").key("entries").beginArray();
        for (const CorpusEntry &entry : all) {
            w.beginObject()
                .kv("hash", entry.hash)
                .kv("name", entry.name)
                .kv("refs", entry.refs)
                .kv("word", std::uint64_t{entry.wordSize})
                .endObject();
        }
        w.endArray().endObject();
        emit(w.str());
        return true;
    }
    if (request.op == "sweep")
        return executeSweep(request, emit);

    rejected_.fetch_add(1, std::memory_order_relaxed);
    count("serve.reject", 1);
    emit(errorResponse(strfmt("unknown op '%s'", request.op.c_str())));
    return false;
}

bool
SweepServer::executeSweep(
    const WireRequest &request,
    const std::function<bool(const std::string &)> &emit)
{
    const auto start = std::chrono::steady_clock::now();
    const auto reject = [&](const std::string &message) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        count("serve.reject", 1);
        emit(errorResponse(message));
        return false;
    };

    if (request.traces.empty())
        return reject("sweep request names no traces");
    if (request.configs.empty())
        return reject("sweep request names no configs");
    const std::size_t nt = request.traces.size();
    const std::size_t nc = request.configs.size();
    if (nt * nc > kMaxRequestCells) {
        return reject(strfmt("request of %zu x %zu cells exceeds the "
                             "%zu cell cap",
                             nt, nc, kMaxRequestCells));
    }
    for (const CacheConfig &config : request.configs) {
        const std::string why = validateServeConfig(config);
        if (!why.empty()) {
            return reject(strfmt("invalid config %s: %s",
                                 config.shortName().c_str(),
                                 why.c_str()));
        }
    }
    {
        // Same gate runSweep enforces with a fatal assert: the wire
        // must never smuggle an unsupported scenario into the engine.
        const std::string why =
            validateScenario(request.scenario, request.configs);
        if (!why.empty())
            return reject(strfmt("invalid scenario: %s", why.c_str()));
    }

    // Resolve every trace against the corpus up front; an unknown or
    // corrupt trace rejects the request before any work is queued.
    std::vector<std::string> hashes(nt);
    std::vector<std::shared_ptr<const PackedTrace>> mapped(nt);
    for (std::size_t t = 0; t < nt; ++t) {
        std::string error;
        hashes[t] = corpus_.resolve(request.traces[t], &error);
        if (hashes[t].empty())
            return reject(error);
        mapped[t] = corpus_.open(hashes[t], &error);
        if (!mapped[t])
            return reject(error);
    }

    sweeps_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t cells = nt * nc;
    auto state = std::make_shared<RequestState>();
    state->keys.resize(cells);
    state->payloads.resize(cells);
    state->ready.assign(cells, 0);

    // Cache pass: hits are complete immediately; misses are grouped
    // per trace for tiling.
    std::vector<char> cached(cells, 0);
    std::vector<std::vector<std::size_t>> miss_configs(nt);
    std::size_t hits = 0;
    for (std::size_t t = 0; t < nt; ++t) {
        for (std::size_t c = 0; c < nc; ++c) {
            const std::size_t cell = t * nc + c;
            state->keys[cell] = ResultCache::key(
                hashes[t], request.maxRefs, request.configs[c],
                request.scenario);
            CachedResult hit;
            if (cache_.lookup(state->keys[cell], hit)) {
                state->payloads[cell] = std::move(hit.payload);
                state->ready[cell] = 1;
                cached[cell] = 1;
                ++hits;
            } else {
                miss_configs[t].push_back(c);
            }
        }
    }
    const std::size_t misses = cells - hits;
    if (hits > 0)
        count("serve.cache_hit", hits);
    if (misses > 0)
        count("serve.cache_miss", misses);

    // Reorder each trace's misses so configs sharing a fused grouping
    // key sit adjacent: the tiles below slice this list, and the
    // sweep engine can only fuse members that land in the same tile.
    // Ineligible configs and fused singletons keep their order after
    // the groups.
    for (auto &missing : miss_configs) {
        std::vector<std::size_t> ordered;
        ordered.reserve(missing.size());
        std::vector<char> placed(nc, 0);
        for (const auto &group :
             fusedGroups(request.configs, missing)) {
            if (group.size() < 2)
                continue;
            for (const std::size_t c : group) {
                ordered.push_back(c);
                placed[c] = 1;
            }
        }
        for (const std::size_t c : missing) {
            if (!placed[c])
                ordered.push_back(c);
        }
        missing = std::move(ordered);
    }

    // Queue one job per (trace, config tile). Tiles are the fairness
    // and streaming granularity (see the file comment in server.hh).
    const std::string label =
        request.label.empty() ? "serve" : request.label;
    for (std::size_t t = 0; t < nt; ++t) {
        const auto &missing = miss_configs[t];
        for (std::size_t base = 0; base < missing.size();
             base += options_.streamTile) {
            const std::size_t end = std::min(
                missing.size(), base + options_.streamTile);
            std::vector<std::size_t> tile(missing.begin() + base,
                                          missing.begin() + end);
            Job job;
            job.priority = request.priority;
            job.work = [this, state, trace = mapped[t], t, nc,
                        tile = std::move(tile),
                        configs = request.configs,
                        scenario = request.scenario,
                        max_refs = request.maxRefs, label] {
                SweepRequest sweep;
                sweep.packedTraces = {trace};
                sweep.configs.reserve(tile.size());
                for (const std::size_t c : tile)
                    sweep.configs.push_back(configs[c]);
                sweep.scenario = scenario;
                sweep.maxRefs = max_refs;
                sweep.pool = options_.pool;
                sweep.wantAverage = false;
                sweep.label = "serve:" + label;
                sweep.telemetry = options_.telemetry;
                try {
                    const SweepReport report = runSweep(sweep);
                    for (std::size_t k = 0; k < tile.size(); ++k) {
                        const std::size_t cell = t * nc + tile[k];
                        const SweepResult &result =
                            report.perTrace[0][k];
                        obs::JsonWriter w;
                        writeResultJson(w, result);
                        // First computation's bytes win in the cache,
                        // so concurrent duplicate requests converge
                        // on one byte sequence (the engines make the
                        // values bit-identical either way).
                        cache_.insert(state->keys[cell],
                                      CachedResult{result, w.str()});
                        {
                            std::lock_guard<std::mutex> lock(
                                state->mutex);
                            state->payloads[cell] = w.str();
                            state->ready[cell] = 1;
                        }
                        state->cv.notify_all();
                    }
                } catch (const std::exception &e) {
                    {
                        std::lock_guard<std::mutex> lock(state->mutex);
                        state->failure = e.what();
                    }
                    state->cv.notify_all();
                }
            };
            enqueue(std::move(job));
        }
    }

    // Stream cells in request order as they become ready. A false
    // return from emit means the client is gone: stop emitting, but
    // the queued jobs still run and populate the cache.
    bool client_alive = true;
    for (std::size_t cell = 0; cell < cells && client_alive; ++cell) {
        if (!cached[cell]) {
            // ready[] for computed cells is written by dispatcher
            // jobs; only ever read it under the state mutex.
            std::unique_lock<std::mutex> lock(state->mutex);
            state->cv.wait(lock, [&] {
                return state->ready[cell] != 0 ||
                       !state->failure.empty();
            });
            if (!state->failure.empty()) {
                emit(errorResponse(
                    strfmt("sweep failed: %s",
                           state->failure.c_str())));
                return false;
            }
        }
        client_alive = emit(resultFrame(hashes[cell / nc], cell / nc,
                                        cell % nc, cached[cell] != 0,
                                        state->payloads[cell]));
    }

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (client_alive) {
        obs::JsonWriter w;
        w.beginObject()
            .kv("type", "done")
            .kv("cells", std::uint64_t{cells})
            .kv("cache_hits", std::uint64_t{hits})
            .kv("cache_misses", std::uint64_t{misses})
            .kv("wall_ms", wall_ms)
            .endObject();
        emit(w.str());
    }

    obs::ServeRecord record;
    record.label = label;
    record.op = "sweep";
    record.numTraces = nt;
    record.numConfigs = nc;
    record.cells = cells;
    record.cacheHits = hits;
    record.cacheMisses = misses;
    record.priority = request.priority;
    record.wallMs = wall_ms;
    obs::recordServe(record);
    return true;
}

void
SweepServer::handleConnection(int fd)
{
    active_.fetch_add(1, std::memory_order_acq_rel);
    std::string payload;
    for (;;) {
        std::string error;
        const FrameStatus status = readFrame(fd, payload, &error);
        if (status == FrameStatus::Closed)
            break;
        if (status == FrameStatus::Malformed) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            count("serve.reject", 1);
            // The stream is no longer framed; answer and close.
            writeFrame(fd, errorResponse(error));
            break;
        }
        WireRequest request;
        if (!parseWireRequest(payload, request, &error)) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            count("serve.reject", 1);
            // Frame boundaries are intact: reject the request but
            // keep the connection serviceable.
            if (!writeFrame(fd, errorResponse(error)))
                break;
            continue;
        }
        bool peer_alive = true;
        execute(request, [&](const std::string &response) {
            if (!writeFrame(fd, response)) {
                peer_alive = false;
                return false;
            }
            return true;
        });
        if (!peer_alive || request.op == "shutdown")
            break;
    }
    ::close(fd);
    active_.fetch_sub(1, std::memory_order_acq_rel);
}

void
SweepServer::acceptLoop(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener closed by stop()
        }
        if (active_.load(std::memory_order_acquire) >=
            options_.maxConnections) {
            count("serve.conn_refused", 1);
            writeFrame(fd,
                       errorResponse("server at connection capacity"));
            ::close(fd);
            continue;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        connThreads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

bool
SweepServer::startUnix(const std::string &path, std::string *error)
{
    const int fd = listenUnix(path, error);
    if (fd < 0)
        return false;
    std::lock_guard<std::mutex> lock(connMutex_);
    listenFds_.push_back(fd);
    acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
    return true;
}

bool
SweepServer::startTcp(std::uint16_t port, std::uint16_t *bound_port,
                      std::string *error)
{
    const int fd = listenTcp(port, bound_port, error);
    if (fd < 0)
        return false;
    std::lock_guard<std::mutex> lock(connMutex_);
    listenFds_.push_back(fd);
    acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
    return true;
}

void
SweepServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [this] { return shutdownRequested(); });
}

void
SweepServer::stop()
{
    if (stopped_.exchange(true))
        return;

    // Unblock and retire the accept loops first, so the connection
    // set stops growing.
    std::vector<std::thread> accepts;
    std::vector<int> listeners;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        listeners.swap(listenFds_);
        accepts.swap(acceptThreads_);
    }
    for (const int fd : listeners) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    for (std::thread &thread : accepts)
        thread.join();

    // Then every in-flight connection: handlers block in readFrame
    // only while their client is connected; joining here means every
    // accepted request has been fully answered.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(connThreads_);
    }
    for (std::thread &thread : conns)
        thread.join();

    // Finally drain the dispatchers: they exit only once the queue is
    // empty, so every accepted job runs even during shutdown.
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        draining_ = true;
    }
    queueCv_.notify_all();
    for (std::thread &thread : dispatchers_)
        thread.join();
    dispatchers_.clear();

    shutdownCv_.notify_all();
}

ServeStats
SweepServer::stats()
{
    ServeStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.sweeps = sweeps_.load(std::memory_order_relaxed);
    s.cacheHits = cache_.hits();
    s.cacheMisses = cache_.misses();
    s.rejected = rejected_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        s.queueHighWater = queueHighWater_;
    }
    s.cacheEntries = cache_.size();
    s.activeConnections = active_.load(std::memory_order_acquire);
    return s;
}

} // namespace occsim::serve
