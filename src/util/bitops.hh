/**
 * @file
 * Small bit-manipulation helpers used throughout the cache models.
 * All cache dimensions in this simulator (sizes, blocks, sub-blocks,
 * associativity) are powers of two, so these helpers are the basis of
 * every piece of address arithmetic.
 */

#ifndef OCCSIM_UTIL_BITOPS_HH
#define OCCSIM_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace occsim {

/** Address type: 32-bit byte addresses per the paper's assumptions. */
using Addr = std::uint32_t;

/**
 * Software prefetch hint (read intent). The replay kernels use it to
 * pull the next record's set metadata toward the core while the
 * current record is being priced; a no-op on compilers without the
 * builtin, and always semantics-free.
 */
#if defined(__GNUC__) || defined(__clang__)
#define OCCSIM_PREFETCH_READ(ptr) __builtin_prefetch((ptr), 0, 3)
#else
#define OCCSIM_PREFETCH_READ(ptr) ((void)0)
#endif

/** @return true if @p v is a (positive) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/** @return ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Align @p addr down to a multiple of the power-of-two @p unit. */
constexpr Addr
alignDown(Addr addr, Addr unit)
{
    return addr & ~(unit - 1);
}

/** Align @p addr up to a multiple of the power-of-two @p unit. */
constexpr Addr
alignUp(Addr addr, Addr unit)
{
    return (addr + unit - 1) & ~(unit - 1);
}

/** @return true when @p addr is a multiple of the power-of-two @p unit. */
constexpr bool
isAligned(Addr addr, Addr unit)
{
    return (addr & (unit - 1)) == 0;
}

} // namespace occsim

#endif // OCCSIM_UTIL_BITOPS_HH
