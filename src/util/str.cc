#include "util/str.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace occsim {

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        // C++11 guarantees contiguous storage; writing through &out[0]
        // up to n+1 bytes uses the terminator slot legally via data().
        std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1,
                       fmt, args2);
    }
    va_end(args2);
    return out;
}

std::vector<std::string>
split(const std::string &text, char sep, bool keep_empty)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t pos = text.find(sep, start);
        const std::size_t end = (pos == std::string::npos) ? text.size()
                                                           : pos;
        std::string field = text.substr(start, end - start);
        if (keep_empty || !field.empty())
            fields.push_back(std::move(field));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return fields;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseU64Strict(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text[0]))) {
        return false;
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

std::uint64_t
envPositiveU64(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    std::uint64_t value = 0;
    if (!parseU64Strict(env, value) || value == 0) {
        warn("ignoring bad %s '%s' (want a positive integer)", name,
             env);
        return fallback;
    }
    return value;
}

std::string
byteCountStr(std::uint64_t bytes)
{
    if (bytes >= 1024 && bytes % 1024 == 0)
        return strfmt("%lluK", static_cast<unsigned long long>(bytes / 1024));
    return strfmt("%llu", static_cast<unsigned long long>(bytes));
}

} // namespace occsim
