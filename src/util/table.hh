/**
 * @file
 * Aligned text-table and CSV emission. Every experiment harness in
 * occsim reports its rows through TableWriter so that bench output is
 * consistent, diffable, and easy to paste next to the paper's tables.
 */

#ifndef OCCSIM_UTIL_TABLE_HH
#define OCCSIM_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace occsim {

/**
 * A simple column-aligned table builder.
 *
 * Usage:
 * @code
 *   TableWriter t({"config", "miss", "traffic"});
 *   t.addRow({"16,8", "0.052", "0.206"});
 *   t.print(std::cout);           // aligned text
 *   t.printCsv(std::cout);        // CSV
 *   t.printMarkdown(std::cout);   // GitHub-flavored markdown
 * @endcode
 */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Optional title printed above the table. */
    void setTitle(std::string title);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Emit the table with space-aligned columns. */
    void print(std::ostream &os) const;

    /** Emit the table as CSV (RFC-4180-ish quoting of commas). */
    void printCsv(std::ostream &os) const;

    /** Emit the table as a GitHub markdown table. */
    void printMarkdown(std::ostream &os) const;

  private:
    std::vector<std::size_t> columnWidths() const;

    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace occsim

#endif // OCCSIM_UTIL_TABLE_HH
