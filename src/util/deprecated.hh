/**
 * @file
 * Staged deprecation attribute for the legacy sweep entry points.
 *
 * The supported sweep surface is SweepRequest/SweepReport
 * (multi/sweep_api.hh); the pre-existing entry points
 * (SweepRunner::run, ParallelSweepRunner::run, free runSweeps) remain
 * as thin compatibility shims and carry OCCSIM_DEPRECATED so new
 * call sites get steered to the one-call API at compile time.
 *
 * Translation units that intentionally exercise the legacy surface —
 * the engine implementations themselves, the bit-identity tests and
 * the engine benchmarks — define OCCSIM_ALLOW_DEPRECATED before any
 * occsim include, which turns the attribute off for that TU (the
 * follow-up-friendly escape hatch: removing a shim later only breaks
 * TUs that explicitly opted in).
 */

#ifndef OCCSIM_UTIL_DEPRECATED_HH
#define OCCSIM_UTIL_DEPRECATED_HH

#if defined(OCCSIM_ALLOW_DEPRECATED)
#define OCCSIM_DEPRECATED(msg)
#else
#define OCCSIM_DEPRECATED(msg) [[deprecated(msg)]]
#endif

#endif // OCCSIM_UTIL_DEPRECATED_HH
