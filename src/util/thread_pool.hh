/**
 * @file
 * A small fixed-size thread pool for the parallel sweep engine.
 *
 * The simulation workload is embarrassingly parallel — every cache
 * configuration is independent and traces are shared read-only — so
 * the pool only needs fire-and-forget tasks plus a dynamically
 * scheduled parallelFor. A pool of size 1 degenerates to fully
 * sequential inline execution (no worker thread is spawned), which is
 * the OCCSIM_THREADS=1 escape hatch: identical control flow to the
 * historical single-threaded engine.
 */

#ifndef OCCSIM_UTIL_THREAD_POOL_HH
#define OCCSIM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace occsim {

/**
 * Worker count used when a pool is constructed with 0 threads: the
 * OCCSIM_THREADS environment variable (validated; positive integers
 * only), or std::thread::hardware_concurrency() when unset.
 */
unsigned configuredThreadCount();

/**
 * The parallelism the machine can actually deliver to this process:
 * the CPU-affinity mask population when the OS exposes one (a
 * container pinned to one core reports 1 here even when
 * hardware_concurrency() sees the whole host), falling back to
 * std::thread::hardware_concurrency(), then to OCCSIM_THREADS, then
 * to 1. The scaling benchmarks use this to decide whether their
 * speedup gates are meaningful rather than silently failing on
 * core-starved CI runners.
 */
unsigned effectiveHardwareThreads();

/** Fixed-size thread pool with exception propagation. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means configuredThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers (>= 1). Size 1 means inline execution. */
    unsigned size() const { return threads_; }

    /**
     * Enqueue @p task. The returned future rethrows any exception the
     * task raised. A size-1 pool runs the task inline before
     * returning.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run @p body(i) for every i in [0, n), distributing indices
     * dynamically across the workers plus the calling thread. Blocks
     * until all iterations finish; rethrows the first exception (the
     * remaining iterations are abandoned). On a size-1 pool this is a
     * plain sequential loop in index order.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * The process-wide pool used by the parallel sweep engine when no
 * explicit pool is given. Sized by configuredThreadCount() on first
 * use.
 */
ThreadPool &globalThreadPool();

} // namespace occsim

#endif // OCCSIM_UTIL_THREAD_POOL_HH
