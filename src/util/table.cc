#include "util/table.hh"

#include <algorithm>
#include <ostream>

#include "util/logging.hh"

namespace occsim {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    occsim_assert(!headers_.empty(), "a table needs at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    occsim_assert(cells.size() == headers_.size(),
                  "row arity %zu does not match header arity %zu",
                  cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
TableWriter::setTitle(std::string title)
{
    title_ = std::move(title);
}

std::vector<std::size_t>
TableWriter::columnWidths() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    return widths;
}

void
TableWriter::print(std::ostream &os) const
{
    const auto widths = columnWidths();
    if (!title_.empty())
        os << title_ << '\n';

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                for (std::size_t pad = cells[c].size();
                     pad < widths[c] + 2; ++pad) {
                    os << ' ';
                }
            }
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    for (std::size_t i = 0; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << csvEscape(cells[c]);
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

void
TableWriter::printMarkdown(std::ostream &os) const
{
    if (!title_.empty())
        os << "### " << title_ << "\n\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        os << "| ";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            os << (c + 1 < cells.size() ? " | " : " |");
        }
        os << '\n';
    };
    emit_row(headers_);
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << "---|";
    os << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace occsim
