#include "util/random.hh"

#include <cmath>
#include <cstddef>

#include "util/logging.hh"

namespace occsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

Rng
Rng::split()
{
    // The child is re-expanded through splitmix64, so parent and
    // child streams share no state words.
    return Rng(next());
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    occsim_assert(bound > 0, "Rng::below requires a positive bound");
    // Debiased modulo (rejection sampling on the top of the range).
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    occsim_assert(lo <= hi, "Rng::between requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : below(span));
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0)
        return 1;
    if (p >= 1.0)
        p = 0.999999;
    // Inverse CDF; run length k >= 1 with continuation probability p.
    const double u = uniform();
    const double k = std::floor(std::log1p(-u) / std::log(p)) + 1.0;
    if (k < 1.0)
        return 1;
    if (k > 1e9)
        return static_cast<std::uint64_t>(1e9);
    return static_cast<std::uint64_t>(k);
}

std::size_t
Rng::pickCumulative(const double *cum_weights, std::size_t n)
{
    occsim_assert(n > 0, "pickCumulative requires a non-empty table");
    const double total = cum_weights[n - 1];
    occsim_assert(total > 0.0, "pickCumulative requires positive weight");
    const double target = uniform() * total;
    for (std::size_t i = 0; i < n; ++i) {
        if (target < cum_weights[i])
            return i;
    }
    return n - 1;
}

} // namespace occsim
