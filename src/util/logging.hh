/**
 * @file
 * Status and error reporting for occsim, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed trace file); exits with
 *            status 1.
 * warn()   - something is suspicious but simulation continues.
 * inform() - normal status output for the user.
 */

#ifndef OCCSIM_UTIL_LOGGING_HH
#define OCCSIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace occsim {

/** Abort with a formatted message; use for internal invariant failures. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user-caused errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Backend for occsim_assert: report and abort. Keeps the condition
 *  text out of the format string (it may contain '%'). */
[[noreturn]] void panicAssert(const char *cond, const char *file,
                              int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Enable or disable inform() output (warnings are always printed). */
void setVerbose(bool verbose);

/** @return true when inform() output is enabled. */
bool verboseEnabled();

/**
 * Assert a simulator invariant with a formatted explanation.
 * Unlike assert(), this is active in release builds: the experiments in
 * this repository are run almost exclusively with optimized binaries.
 */
#define occsim_assert(cond, fmt, ...)                                   \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::occsim::panicAssert(#cond, __FILE__, __LINE__, fmt        \
                                  __VA_OPT__(,) __VA_ARGS__);           \
        }                                                               \
    } while (0)

} // namespace occsim

#endif // OCCSIM_UTIL_LOGGING_HH
