/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be exactly reproducible: the same seed yields the
 * same trace, the same RANDOM-replacement victim sequence, and hence
 * the same miss ratios, on every platform. We therefore avoid
 * std::mt19937 distributions (whose mapping from raw bits to ranges is
 * implementation-defined for some distributions) and implement
 * xoshiro256** with our own range reduction.
 */

#ifndef OCCSIM_UTIL_RANDOM_HH
#define OCCSIM_UTIL_RANDOM_HH

#include <cstdint>

namespace occsim {

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), seeded via splitmix64.
 * Small, fast, and with well-understood statistical quality; more than
 * adequate for workload generation and replacement-policy decisions.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator, restoring a deterministic stream. */
    void seed(std::uint64_t seed);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Derive an independent child generator (consumes one draw from
     * this stream). Used by the fuzz harness so each (config, trace)
     * generator gets its own deterministic stream: replaying a case
     * seed never depends on how many draws other generators made.
     */
    Rng split();

    /** @return a uniform integer in [0, bound); @p bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Sample a geometric-like run length: returns k >= 1 where
     * P(k) = (1-p) * p^(k-1). Used for sequential-run modelling.
     */
    std::uint64_t geometric(double p);

    /**
     * Sample from a discrete distribution given cumulative weights.
     * @param cumWeights array of monotonically increasing cumulative
     *        weights; the final element is the total weight.
     * @param n number of entries.
     * @return index in [0, n).
     */
    std::size_t pickCumulative(const double *cumWeights, std::size_t n);

  private:
    std::uint64_t s_[4];
};

} // namespace occsim

#endif // OCCSIM_UTIL_RANDOM_HH
