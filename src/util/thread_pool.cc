#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>

#if defined(__linux__)
#include <sched.h>
#endif

#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

namespace {

/** Backstop against absurd OCCSIM_THREADS values. */
constexpr std::uint64_t kMaxThreads = 256;

} // namespace

unsigned
configuredThreadCount()
{
    std::uint64_t value = envPositiveU64("OCCSIM_THREADS", 0);
    if (value > 0) {
        if (value > kMaxThreads) {
            warn("clamping OCCSIM_THREADS from %llu to %llu",
                 static_cast<unsigned long long>(value),
                 static_cast<unsigned long long>(kMaxThreads));
            value = kMaxThreads;
        }
        return static_cast<unsigned>(value);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
effectiveHardwareThreads()
{
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
        const int count = CPU_COUNT(&mask);
        if (count > 0)
            return static_cast<unsigned>(count);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0)
        return hw;
    const std::uint64_t env = envPositiveU64("OCCSIM_THREADS", 0);
    return env > 0 ? static_cast<unsigned>(std::min(
                         env, std::uint64_t{kMaxThreads}))
                   : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads > 0 ? threads : configuredThreadCount())
{
    if (threads_ <= 1)
        return;  // size-1 pools execute inline; no workers needed
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    if (threads_ <= 1) {
        (*packaged)();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        occsim_assert(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    OCCSIM_TELEM_STAGE("pool.parallel_for");
    OCCSIM_TELEM_COUNT("pool.tasks", n);
    if (threads_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto drain = [&] {
        std::size_t i;
        while (!failed.load(std::memory_order_relaxed) &&
               (i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    // The calling thread participates, so nested parallelFor calls
    // from inside a pool task make progress even with every worker
    // busy.
    const std::size_t helpers =
        std::min<std::size_t>(threads_, n) - 1;
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i)
        futures.push_back(submit(drain));
    drain();
    for (std::future<void> &future : futures)
        future.get();

    if (error)
        std::rethrow_exception(error);
}

ThreadPool &
globalThreadPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace occsim
