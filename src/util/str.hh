/**
 * @file
 * String formatting and parsing helpers. GCC 12 lacks <format>, so a
 * printf-backed strfmt() stands in for std::format throughout occsim.
 */

#ifndef OCCSIM_UTIL_STR_HH
#define OCCSIM_UTIL_STR_HH

#include <string>
#include <vector>

namespace occsim {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p text on @p sep, dropping empty fields when @p keepEmpty
 *  is false. */
std::vector<std::string> split(const std::string &text, char sep,
                               bool keep_empty = false);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Case-sensitive prefix test. */
bool startsWith(const std::string &text, const std::string &prefix);

/**
 * Parse an unsigned integer, accepting decimal or 0x-prefixed hex.
 * @return true on success, storing the value in @p out.
 */
bool parseU64(const std::string &text, std::uint64_t &out);

/**
 * Strict variant of parseU64 for validated overrides: rejects leading
 * whitespace, sign characters (strtoull silently wraps negatives),
 * trailing garbage, and overflow.
 */
bool parseU64Strict(const std::string &text, std::uint64_t &out);

/**
 * Read environment variable @p name as a positive integer via
 * parseU64Strict. Returns @p fallback when the variable is unset;
 * warns and returns @p fallback when it is malformed, zero, or
 * overflows.
 */
std::uint64_t envPositiveU64(const char *name, std::uint64_t fallback);

/** Render a byte count compactly, e.g. "64", "1K", "16K". */
std::string byteCountStr(std::uint64_t bytes);

} // namespace occsim

#endif // OCCSIM_UTIL_STR_HH
