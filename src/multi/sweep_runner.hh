/**
 * @file
 * Sweep results and the shared summarization arithmetic.
 *
 * The paper's tables evaluate dozens of cache design points per
 * trace. All engines — direct, single-pass, batched, sharded, fused,
 * sampled, and the coherent multicore engine — funnel their finished
 * statistics through summarizeStats() here, so every SweepResult's
 * derived doubles come from exactly one piece of arithmetic
 * (bit-identical across engines by construction).
 */

#ifndef OCCSIM_MULTI_SWEEP_RUNNER_HH
#define OCCSIM_MULTI_SWEEP_RUNNER_HH

#include <vector>

#include "cache/cache.hh"
#include "cache/split_cache.hh"
#include "multi/sample_replay.hh"
#include "trace/trace.hh"

namespace occsim {

class CoherentSystem;

/**
 * Coherency-traffic summary of one multicore scenario run: the
 * snooping-bus counters (CoherencyStats) plus the derived per-kiloref
 * and traffic-ratio figures that extend the paper's methodology to
 * coherency traffic. Inactive (all zero) for single-cache results.
 */
struct CoherencySummary
{
    bool active = false;
    std::uint32_t cores = 0;
    std::uint64_t busReads = 0;
    std::uint64_t busReadForOwnership = 0;
    std::uint64_t busUpgrades = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t cacheToCacheTransfers = 0;
    std::uint64_t c2cWords = 0;
    std::uint64_t snoopWritebackWords = 0;
    /** Invalidations per 1000 references (reads + writes). */
    double invalidationsPerKiloRef = 0.0;
    /** Coherency-only bus words (cache-to-cache + snoop flushes)
     *  over counted references — the coherency surcharge on the
     *  paper's traffic ratio. */
    double coherenceTrafficRatio = 0.0;
    /** Per-core miss ratios, core order. */
    std::vector<double> coreMissRatios;
};

/**
 * Result of one configuration within a sweep. The headline doubles
 * are exact counts from the exact engines; under SweepEngine::Sampled
 * they are per-unit means and `sampled` carries the uncertainty
 * (sampled.active distinguishes the two — exact results leave it
 * false). Multicore scenario sweeps additionally fill `coherency`
 * (aggregated across cores; the headline doubles then describe the
 * core-merged statistics).
 */
struct SweepResult
{
    CacheConfig config;
    std::uint64_t grossBytes = 0;
    double missRatio = 0.0;
    double warmMissRatio = 0.0;
    double trafficRatio = 0.0;
    double warmTrafficRatio = 0.0;
    double nibbleTrafficRatio = 0.0;
    double warmNibbleTrafficRatio = 0.0;
    /** Sampling-engine estimates (stderr/CI per metric); inactive
     *  and all-zero for exact-engine results. */
    SampleEstimates sampled;
    /** Coherent-engine traffic summary; inactive for single-cache
     *  results. */
    CoherencySummary coherency;
};

/** Summarize a finished cache into a SweepResult (nibble-mode
 *  pricing at ratio 3). */
SweepResult summarizeCache(const Cache &cache);

/**
 * Summarize finished run statistics into a SweepResult. This is the
 * code path behind summarizeCache, exposed so the single-pass engine
 * can produce its summaries through exactly the same derived-metric
 * arithmetic (bit-identical doubles).
 */
SweepResult summarizeStats(const CacheConfig &config,
                           std::uint64_t gross_bytes,
                           const CacheStats &stats);

/**
 * Summarize a finished split I/D pair under its original (SplitID)
 * config: the two halves' statistics merge exactly (integer sums)
 * and the combined totals flow through summarizeStats.
 */
SweepResult summarizeSplit(const CacheConfig &config,
                           const SplitCache &split);

/**
 * Summarize a finished coherent scenario run for grid entry
 * @p config: per-core statistics merge exactly across cores, the
 * merged totals flow through summarizeStats, and the bus counters
 * land in SweepResult::coherency.
 */
SweepResult summarizeCoherent(const CacheConfig &config,
                              const CoherentSystem &system);

/** Simulate one configuration over @p source (routing SplitID
 *  configs to a SplitCache pair); returns its summary. */
SweepResult runSingle(const CacheConfig &config, TraceSource &source,
                      std::uint64_t max_refs = 0);

/**
 * Average sweep results across traces, unweighted, as the paper does
 * ("multiple-trace miss and traffic ratios are the unweighted average
 * of the ... individual runs"). All runs must cover the same configs
 * in the same order. Coherency counters average as rounded integer
 * means; the derived coherency doubles average exactly like the
 * headline metrics.
 */
std::vector<SweepResult>
averageResults(const std::vector<std::vector<SweepResult>> &runs);

} // namespace occsim

#endif // OCCSIM_MULTI_SWEEP_RUNNER_HH
