/**
 * @file
 * Single-pass multi-configuration simulation.
 *
 * The paper's tables evaluate dozens of cache design points per trace;
 * re-reading (or regenerating) the trace for each one is wasteful, so
 * SweepRunner instantiates every configuration up front and feeds each
 * reference to all of them in one pass over the trace.
 */

#ifndef OCCSIM_MULTI_SWEEP_RUNNER_HH
#define OCCSIM_MULTI_SWEEP_RUNNER_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "multi/sample_replay.hh"
#include "trace/trace.hh"
#include "util/deprecated.hh"

namespace occsim {

/**
 * Result of one configuration within a sweep. The headline doubles
 * are exact counts from the exact engines; under SweepEngine::Sampled
 * they are per-unit means and `sampled` carries the uncertainty
 * (sampled.active distinguishes the two — exact results leave it
 * false).
 */
struct SweepResult
{
    CacheConfig config;
    std::uint64_t grossBytes = 0;
    double missRatio = 0.0;
    double warmMissRatio = 0.0;
    double trafficRatio = 0.0;
    double warmTrafficRatio = 0.0;
    double nibbleTrafficRatio = 0.0;
    double warmNibbleTrafficRatio = 0.0;
    /** Sampling-engine estimates (stderr/CI per metric); inactive
     *  and all-zero for exact-engine results. */
    SampleEstimates sampled;
};

/** Runs many cache configurations over one trace pass. */
class SweepRunner
{
  public:
    explicit SweepRunner(const std::vector<CacheConfig> &configs);

    /** Feed up to @p max_refs references (0 = all) to every cache.
     *  @return references consumed. */
    OCCSIM_DEPRECATED("drive sweeps through runSweep(SweepRequest) "
                      "(multi/sweep_api.hh); the sequential runner "
                      "remains as the streaming-source fallback")
    std::uint64_t run(TraceSource &source, std::uint64_t max_refs = 0);

    std::size_t size() const { return caches_.size(); }
    const Cache &cache(std::size_t i) const { return *caches_[i]; }
    Cache &cache(std::size_t i) { return *caches_[i]; }

    /** Summaries (includes nibble-mode pricing at ratio 3). */
    std::vector<SweepResult> results() const;

  private:
    std::vector<std::unique_ptr<Cache>> caches_;
};

/** Summarize a finished cache into a SweepResult (nibble-mode
 *  pricing at ratio 3). */
SweepResult summarizeCache(const Cache &cache);

/**
 * Summarize finished run statistics into a SweepResult. This is the
 * code path behind summarizeCache, exposed so the single-pass engine
 * can produce its summaries through exactly the same derived-metric
 * arithmetic (bit-identical doubles).
 */
SweepResult summarizeStats(const CacheConfig &config,
                           std::uint64_t gross_bytes,
                           const CacheStats &stats);

/** Simulate one configuration over @p source; returns its summary. */
SweepResult runSingle(const CacheConfig &config, TraceSource &source,
                      std::uint64_t max_refs = 0);

/**
 * Average sweep results across traces, unweighted, as the paper does
 * ("multiple-trace miss and traffic ratios are the unweighted average
 * of the ... individual runs"). All runs must cover the same configs
 * in the same order.
 */
std::vector<SweepResult>
averageResults(const std::vector<std::vector<SweepResult>> &runs);

} // namespace occsim

#endif // OCCSIM_MULTI_SWEEP_RUNNER_HH
