/**
 * @file
 * Fused sector-grid replay — engine 6 of the sweep stack.
 *
 * The paper's headline sweeps vary the SUB-BLOCK size and the fetch
 * policy over a fixed (sets, assoc, block) geometry. For every config
 * sharing that geometry (plus the replacement, write, and
 * write-allocate policies), the block-level state evolves
 * identically: whether a reference hits a resident BLOCK depends only
 * on the tag array, victim selection takes the first invalid way
 * (tags again) or the per-set LRU/FIFO order, and both the order
 * updates (onAccess on every block hit, onFill on every allocation)
 * and the allocation decisions (a no-allocate write block-miss skips
 * the fill) are sub-block-blind. So one tag array + one
 * ReplacementState can be simulated ONCE per group while each member
 * config only carries what actually differs: a per-frame plane of
 * 64-bit sub-block masks (valid / touched / dirty / ever-filled;
 * <= 64 sub-blocks per block covers the whole paper grid) and its own
 * CacheStats. Demand and load-forward fetch differ only in which mask
 * bits a miss sets and how the burst is counted, so every
 * (sub-block size x fetch policy) variant rides the same pass.
 *
 * Bit-identity contract: each config's CacheStats receives exactly
 * the recorder-call sequence Cache::accessSpec would have issued for
 * that config alone, in the same per-reference order, so the merged
 * summaries are bit-identical to direct simulation (the differential
 * fuzzer and bench_fused enforce this).
 *
 * Routing predicate (fusedEligible): the same set-local argument as
 * shardEligible — Random replacement shares one Rng across sets and
 * PrefetchNextOnMiss allocates into the sequentially-next block —
 * plus both break the shared-tag argument here (Random because the
 * fused pass would have to draw once for the whole group, which is
 * fine, but composing with set-sharding would not be; next-block
 * prefetch because the prefetch allocation depends on per-config
 * sub-block geometry, splitting the tag state across the group).
 *
 * Plane layout (all indexed so per-reference loops walk contiguous
 * memory): the touched and dirty masks depend only on WHICH
 * references land in a sub-block, not on the fetch policy, so they
 * are stored once per distinct sub-block SIZE (a "class") rather
 * than per config; the valid and ever-filled masks are per config
 * (fetch policies validate different spans). On top of those, a
 * per-(frame, grain) bitmask over the group's configs — one bit per
 * member, grain = the group's finest sub-block size — caches whether
 * each config's covering sub-block is valid, so the dominant path (a
 * reference whose sub-block is valid in every lane) tests the whole
 * group with a single load.
 *
 * Composes with set-sharding exactly like ShardReplay: construct with
 * num_shards > 1 and drive runShard(s, trace) per shard — every
 * config of the group is set-local, so per-shard group passes merge
 * exactly (CacheStats::mergeFrom is an exact integer merge).
 */

#ifndef OCCSIM_MULTI_FUSED_REPLAY_HH
#define OCCSIM_MULTI_FUSED_REPLAY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/cache_stats.hh"
#include "multi/sweep_runner.hh"
#include "trace/packed_trace.hh"

namespace occsim {

/** True when @p config can ride a fused group pass (and be set-
 *  sharded within it): non-Random replacement, no next-block
 *  prefetch. Same predicate as shardEligible — see the file comment
 *  for why both exclusions also matter here. */
bool fusedEligible(const CacheConfig &config);

/**
 * The grouping key: configs agreeing on every field share block-level
 * tag and replacement state (effective geometry — associativity
 * clamped to the block count — so nominally different configs that
 * degenerate to the same sets x ways grid fuse too). The write policy
 * and write-allocate flag do not influence the tag state directly,
 * but write-allocate changes WHICH references allocate and the write
 * policy selects the copy-back kernel, so both stay in the key.
 */
struct FusedKey
{
    std::uint32_t numSets = 0;
    std::uint32_t assoc = 0;
    std::uint32_t blockSize = 0;
    ReplacementPolicy replacement = ReplacementPolicy::LRU;
    WritePolicy write = WritePolicy::WriteThrough;
    bool writeAllocate = true;

    bool operator==(const FusedKey &) const = default;
};

/** Grouping key of @p config (which must be fusedEligible). */
FusedKey fusedKeyOf(const CacheConfig &config);

/** Most configs one fused pass can carry: the grain-validity planes
 *  address members through a 64-bit bitmask. fusedGroups splits
 *  larger key populations into several groups. */
inline constexpr std::size_t kMaxGroupConfigs = 64;

/**
 * Partition the fusedEligible members of @p candidates into fusable
 * groups (first-appearance order, so the grouping is deterministic;
 * keys with more than kMaxGroupConfigs members split). Ineligible
 * candidates are omitted entirely; groups of size one are returned
 * too — callers decide whether fusing a singleton is worth the plane
 * overhead (the sweep routers leave singletons batched).
 */
std::vector<std::vector<std::size_t>>
fusedGroups(const std::vector<CacheConfig> &configs,
            const std::vector<std::size_t> &candidates);

/**
 * One fused group run: block-level tag/replacement simulation once
 * per trace pass, per-config mask planes and counters for every
 * member. With num_shards > 1 the group is additionally set-sharded:
 * shard s owns the sets congruent to s and runShard(s, ...) only
 * touches shard s's state, so distinct shards run concurrently with
 * no synchronization (merging happens single-threaded afterwards).
 */
class FusedReplay
{
  public:
    /** All @p configs must be fusedEligible and share one FusedKey;
     *  @p num_shards must be 1 (unsharded) or planShardCount-valid
     *  (a power of two <= min(numSets, kMaxShards)). */
    explicit FusedReplay(const std::vector<CacheConfig> &configs,
                         std::uint32_t num_shards = 1);
    ~FusedReplay();

    std::size_t numConfigs() const { return configs_.size(); }
    const CacheConfig &config(std::size_t c) const
    {
        return configs_[c];
    }
    std::uint32_t numShards() const { return numShards_; }
    std::uint32_t shardBits() const { return shardBits_; }
    std::uint32_t blockBits() const { return blockBits_; }

    /** Unsharded drive (numShards() == 1): price @p n records for
     *  every member config in one pass and finalize residencies,
     *  exactly like one Cache::run pass per config. */
    void run(const PackedRecord *refs, std::size_t n);

    /** Replay shard @p shard of @p trace (which must have been built
     *  with this engine's blockBits/shardBits) through the group
     *  pass and finalize its residencies. */
    void runShard(std::size_t shard, const ShardedPackedTrace &trace);

    /** References replayed by @p shard so far (imbalance telemetry). */
    std::uint64_t shardRefs(std::size_t shard) const
    {
        return refs_[shard];
    }

    /** Member @p c's statistics, merged across shards (exact). */
    CacheStats mergedStats(std::size_t c) const;

    /** Member @p c's summary — bit-identical to a direct run. */
    SweepResult result(std::size_t c) const;

    /** All member summaries, in construction order. */
    std::vector<SweepResult> results() const;

  private:
    class Pass;

    std::vector<CacheConfig> configs_;
    std::uint32_t blockBits_ = 0;
    std::uint32_t shardBits_ = 0;
    std::uint32_t numShards_ = 1;
    std::vector<std::uint64_t> grossBytes_;  ///< per config
    std::vector<std::unique_ptr<Pass>> passes_;  ///< one per shard
    std::vector<std::uint64_t> refs_;  ///< per shard
};

} // namespace occsim

#endif // OCCSIM_MULTI_FUSED_REPLAY_HH
