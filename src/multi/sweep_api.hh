/**
 * @file
 * The unified sweep API: one request/report pair in front of every
 * sweep engine.
 *
 * Before this header, callers picked between three overlapping entry
 * points (sequential SweepRunner::run, ParallelSweepRunner::run, free
 * runSweeps — all since deleted) and hard-coded engine plumbing —
 * thread pools, engine modes, averaging, instrumentation — at every
 * call site. The supported surface is now:
 *
 *   SweepRequest request;
 *   request.traces = buildSuiteTraces(suite);
 *   request.configs = paperGrid(1024, 2);
 *   SweepReport report = runSweep(request);
 *   // report.perTrace, report.average, report.manifest
 *
 * Everything the deleted entry points could do is a field of the
 * request: engine policy, explicit pool, reference cap, a telemetry
 * sink, and an optional per-trace probe for callers that need to
 * inspect a finished Cache (Table 6's residency statistics).
 * tests/test_sweep_api.cpp holds the cross-engine exact-equality
 * proof.
 *
 * Scenario-first: SweepRequest::scenario names the machine the grid
 * is priced on. The default (1 core) is today's single-cache model,
 * served by the single-cache engines bit-identically; a multicore
 * scenario routes every (trace, config) pair to the coherent MESI
 * engine (coherence/coherent_system.hh), and results additionally
 * carry SweepResult::coherency bus-traffic metrics.
 */

#ifndef OCCSIM_MULTI_SWEEP_API_HH
#define OCCSIM_MULTI_SWEEP_API_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/scenario.hh"
#include "multi/parallel_sweep.hh"
#include "obs/manifest.hh"
#include "trace/packed_trace.hh"

namespace occsim {

/** @return the stable policy name of @p engine ("auto",
 *  "direct_only", "cross_check", "sampled"). */
const char *sweepEngineName(SweepEngine engine);

/**
 * Everything one sweep needs: inputs, engine policy, execution
 * resources, and observability routing. Value type — build it field
 * by field; only traces and configs are mandatory.
 */
struct SweepRequest
{
    /** Shared immutable traces (e.g. from buildSuiteTraces or
     *  buildTraceShared). Exactly one of traces / packedTraces must
     *  be non-empty; no null entries. */
    std::vector<std::shared_ptr<const VectorTrace>> traces;

    /**
     * Already packed traces — e.g. corpus files mapped read-only by
     * TraceCorpus::open(), replayed in place with no decode and no
     * copy. Packed records carry no MemRef stream, so this path is
     * served entirely by the batch/set-sharded replay engines (whose
     * results are bit-identical to every other engine); it requires
     * SweepEngine::Auto and is incompatible with probe.
     */
    std::vector<std::shared_ptr<const PackedTrace>> packedTraces;

    /** Config grid; one result slot per entry per trace. */
    std::vector<CacheConfig> configs;

    /**
     * The machine the grid is priced on. The default (1 core) is the
     * single-cache model: requests that never touch this field behave
     * exactly as before the scenario redesign, served by the same
     * engines with bit-identical results. A multicore scenario
     * (cores >= 2) routes every (trace, config) pair to the coherent
     * MESI engine; it requires SweepEngine::Auto, no probe, and
     * configs inside the MESI subset (copy-back + write-allocate +
     * demand + unified — see validateScenario).
     */
    ScenarioConfig scenario;

    /** Engine routing policy (Auto = fast paths where eligible). */
    SweepEngine engine = SweepEngine::Auto;

    /** Pool to run on; nullptr means globalThreadPool(). */
    ThreadPool *pool = nullptr;

    /** Per-trace reference cap (0 = whole trace). */
    std::uint64_t maxRefs = 0;

    /** Sampling knobs (unit size, interval, warmup, seed); consulted
     *  only under SweepEngine::Sampled. */
    SampleSpec sample;

    /** Compute SweepReport::average (unweighted across traces, the
     *  paper's convention). */
    bool wantAverage = true;

    /** Label recorded in the manifest ("table6", "suite:PDP-11"). */
    std::string label;

    /**
     * Telemetry sink for the sweep-level span and counters. nullptr
     * routes to the global obs::telemetry() registry (subject to the
     * global enable flag); an explicit sink records unconditionally.
     * Engine-internal stage spans always go to the global registry.
     */
    obs::Telemetry *telemetry = nullptr;

    /**
     * Optional per-trace probe, called as probe(trace_index, runner)
     * after that trace's sweep finishes, before results are
     * collected. Setting a probe forces runner-per-trace execution
     * (each trace gets its own ParallelSweepRunner; results stay
     * bit-identical) and pins those runners off the set-sharded
     * engine, so probes can read runner.cache(i) for statistics
     * SweepResult does not carry — construct with
     * SweepEngine::DirectOnly if every config must keep a Cache.
     */
    std::function<void(std::size_t, const ParallelSweepRunner &)> probe;
};

/** What one sweep produced. */
struct SweepReport
{
    /** perTrace[t][c]: traces[t] x configs[c], grid order. */
    std::vector<std::vector<SweepResult>> perTrace;

    /** Unweighted per-config average across traces (empty when
     *  SweepRequest::wantAverage is false). */
    std::vector<SweepResult> average;

    /** References consumed per config per trace (min(maxRefs,
     *  trace size), summed over traces). */
    std::uint64_t refs = 0;

    /** Manifest of the run so far, including this sweep: trace
     *  identities, engine routing per config, stage wall times. */
    obs::RunManifest manifest;
};

/**
 * Run @p request: every config over every trace, partitioned across
 * the pool, routed per SweepRequest::engine. The one supported sweep
 * entry point; bit-identical to the legacy paths it replaced.
 */
SweepReport runSweep(const SweepRequest &request);

} // namespace occsim

#endif // OCCSIM_MULTI_SWEEP_API_HH
