#include "multi/batch_replay.hh"

#include <algorithm>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

BatchReplay::BatchReplay(const std::vector<CacheConfig> &configs,
                         std::size_t tile_configs,
                         std::size_t chunk_records)
    : tileConfigs_(tile_configs), chunkRecords_(chunk_records)
{
    occsim_assert(!configs.empty(),
                  "batch replay needs at least one config");
    occsim_assert(tileConfigs_ > 0, "tile size must be positive");
    occsim_assert(chunkRecords_ > 0, "chunk size must be positive");

    caches_.reserve(configs.size());
    for (const CacheConfig &config : configs)
        caches_.push_back(std::make_unique<Cache>(config));
    numTiles_ = (caches_.size() + tileConfigs_ - 1) / tileConfigs_;
}

void
BatchReplay::runTile(std::size_t tile, const PackedTrace &trace,
                     std::uint64_t max_refs)
{
    occsim_assert(tile < numTiles_, "tile index out of range");
    OCCSIM_TELEM_STAGE("engine.batch");
    const std::size_t begin = tile * tileConfigs_;
    const std::size_t end =
        std::min(begin + tileConfigs_, caches_.size());

    const std::uint64_t limit =
        max_refs == 0
            ? trace.size()
            : std::min<std::uint64_t>(max_refs, trace.size());
    const PackedRecord *records = trace.data();

    // Chunk-blocked: every cache of the tile consumes one chunk
    // before the next chunk is touched, keeping the chunk L2-resident
    // across the tile. Each cache still sees records strictly in
    // trace order, so its state and statistics are exactly those of a
    // solo replay.
    for (std::uint64_t pos = 0; pos < limit; pos += chunkRecords_) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunkRecords_, limit - pos));
        for (std::size_t c = begin; c < end; ++c)
            caches_[c]->replayPacked(records + pos, n);
    }
    for (std::size_t c = begin; c < end; ++c)
        caches_[c]->finalizeResidencies();
    OCCSIM_TELEM_COUNT("engine.batch.refs",
                       limit * static_cast<std::uint64_t>(end - begin));
    OCCSIM_TELEM_COUNT("engine.batch.bytes",
                       limit * sizeof(PackedRecord));
}

std::uint64_t
BatchReplay::run(const PackedTrace &trace, std::uint64_t max_refs)
{
    for (std::size_t tile = 0; tile < numTiles_; ++tile)
        runTile(tile, trace, max_refs);
    return max_refs == 0
               ? trace.size()
               : std::min<std::uint64_t>(max_refs, trace.size());
}

std::vector<SweepResult>
BatchReplay::results() const
{
    std::vector<SweepResult> out;
    out.reserve(caches_.size());
    for (const auto &cache : caches_)
        out.push_back(summarizeCache(*cache));
    return out;
}

} // namespace occsim
