// This TU defines the deprecated sequential entry point itself.
#define OCCSIM_ALLOW_DEPRECATED 1

#include "multi/sweep_runner.hh"

#include <cmath>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

namespace {

// Namespace-scope so summarizeCache carries no per-call init guard:
// the parallel engine summarizes from many threads at once.
const NibbleModeBus kNibbleBus;

/**
 * Combine one metric's per-trace estimates into the cross-trace
 * average: the mean of T independent trace means has standard error
 * sqrt(sum of per-trace stderr^2) / T.
 */
MetricEstimate
combineEstimates(const std::vector<std::vector<SweepResult>> &runs,
                 std::size_t c,
                 MetricEstimate SampleEstimates::*metric)
{
    MetricEstimate out;
    double var_sum = 0.0;
    for (const auto &run : runs) {
        const MetricEstimate &est = run[c].sampled.*metric;
        out.mean += est.mean;
        var_sum += est.stdErr * est.stdErr;
    }
    const double n = static_cast<double>(runs.size());
    out.mean /= n;
    out.stdErr = std::sqrt(var_sum) / n;
    out.ci95 = kCi95Z * out.stdErr;
    return out;
}

/** Cross-trace average of per-trace sampling estimates (all runs of
 *  config @p c must be sampled.active). */
SampleEstimates
averageEstimates(const std::vector<std::vector<SweepResult>> &runs,
                 std::size_t c)
{
    SampleEstimates out;
    out.active = true;
    out.unitRefs = runs.front()[c].sampled.unitRefs;
    out.intervalUnits = runs.front()[c].sampled.intervalUnits;
    out.warmupRefs = runs.front()[c].sampled.warmupRefs;
    for (const auto &run : runs) {
        out.units += run[c].sampled.units;
        out.measuredRefs += run[c].sampled.measuredRefs;
    }
    out.missRatio =
        combineEstimates(runs, c, &SampleEstimates::missRatio);
    out.warmMissRatio =
        combineEstimates(runs, c, &SampleEstimates::warmMissRatio);
    out.trafficRatio =
        combineEstimates(runs, c, &SampleEstimates::trafficRatio);
    out.warmTrafficRatio =
        combineEstimates(runs, c, &SampleEstimates::warmTrafficRatio);
    out.nibbleTrafficRatio = combineEstimates(
        runs, c, &SampleEstimates::nibbleTrafficRatio);
    out.warmNibbleTrafficRatio = combineEstimates(
        runs, c, &SampleEstimates::warmNibbleTrafficRatio);
    return out;
}

} // namespace

SweepResult
summarizeStats(const CacheConfig &config, std::uint64_t gross_bytes,
               const CacheStats &stats)
{
    SweepResult result;
    result.config = config;
    result.grossBytes = gross_bytes;
    result.missRatio = stats.missRatio();
    result.warmMissRatio = stats.warmMissRatio();
    result.trafficRatio = stats.trafficRatio();
    result.warmTrafficRatio = stats.warmTrafficRatio();
    result.nibbleTrafficRatio = stats.scaledTrafficRatio(kNibbleBus);
    result.warmNibbleTrafficRatio =
        stats.warmScaledTrafficRatio(kNibbleBus);
    return result;
}

SweepResult
summarizeCache(const Cache &cache)
{
    return summarizeStats(cache.config(),
                          cache.geometry().grossBytes(),
                          cache.stats());
}

SweepRunner::SweepRunner(const std::vector<CacheConfig> &configs)
{
    occsim_assert(!configs.empty(), "sweep needs at least one config");
    caches_.reserve(configs.size());
    for (const CacheConfig &config : configs)
        caches_.push_back(std::make_unique<Cache>(config));
}

std::uint64_t
SweepRunner::run(TraceSource &source, std::uint64_t max_refs)
{
    OCCSIM_TELEM_STAGE("engine.sequential");
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        for (auto &cache : caches_)
            cache->access(ref);
        ++count;
    }
    for (auto &cache : caches_)
        cache->finalizeResidencies();
    OCCSIM_TELEM_COUNT("engine.sequential.refs",
                       count * caches_.size());
    OCCSIM_TELEM_COUNT("engine.sequential.bytes",
                       count * sizeof(MemRef));
    return count;
}

std::vector<SweepResult>
SweepRunner::results() const
{
    std::vector<SweepResult> out;
    out.reserve(caches_.size());
    for (const auto &cache : caches_)
        out.push_back(summarizeCache(*cache));
    return out;
}

SweepResult
runSingle(const CacheConfig &config, TraceSource &source,
          std::uint64_t max_refs)
{
    Cache cache(config);
    cache.run(source, max_refs);
    return summarizeCache(cache);
}

std::vector<SweepResult>
averageResults(const std::vector<std::vector<SweepResult>> &runs)
{
    occsim_assert(!runs.empty(), "no runs to average");
    const std::size_t num_configs = runs.front().size();
    for (const auto &run : runs) {
        occsim_assert(run.size() == num_configs,
                      "runs cover different config counts");
    }

    std::vector<SweepResult> averaged = runs.front();
    const double n = static_cast<double>(runs.size());
    for (std::size_t c = 0; c < num_configs; ++c) {
        SweepResult &out = averaged[c];
        out.missRatio = 0.0;
        out.warmMissRatio = 0.0;
        out.trafficRatio = 0.0;
        out.warmTrafficRatio = 0.0;
        out.nibbleTrafficRatio = 0.0;
        out.warmNibbleTrafficRatio = 0.0;
        bool all_sampled = true;
        for (const auto &run : runs) {
            occsim_assert(run[c].config == out.config,
                          "config order differs between runs");
            out.missRatio += run[c].missRatio;
            out.warmMissRatio += run[c].warmMissRatio;
            out.trafficRatio += run[c].trafficRatio;
            out.warmTrafficRatio += run[c].warmTrafficRatio;
            out.nibbleTrafficRatio += run[c].nibbleTrafficRatio;
            out.warmNibbleTrafficRatio += run[c].warmNibbleTrafficRatio;
            all_sampled = all_sampled && run[c].sampled.active;
        }
        out.missRatio /= n;
        out.warmMissRatio /= n;
        out.trafficRatio /= n;
        out.warmTrafficRatio /= n;
        out.nibbleTrafficRatio /= n;
        out.warmNibbleTrafficRatio /= n;
        out.sampled = all_sampled ? averageEstimates(runs, c)
                                  : SampleEstimates{};
    }
    return averaged;
}

} // namespace occsim
