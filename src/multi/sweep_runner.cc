#include "multi/sweep_runner.hh"

#include <cmath>

#include "coherence/coherent_system.hh"
#include "util/logging.hh"

namespace occsim {

namespace {

// Namespace-scope so summarizeCache carries no per-call init guard:
// the parallel engine summarizes from many threads at once.
const NibbleModeBus kNibbleBus;

/**
 * Combine one metric's per-trace estimates into the cross-trace
 * average: the mean of T independent trace means has standard error
 * sqrt(sum of per-trace stderr^2) / T.
 */
MetricEstimate
combineEstimates(const std::vector<std::vector<SweepResult>> &runs,
                 std::size_t c,
                 MetricEstimate SampleEstimates::*metric)
{
    MetricEstimate out;
    double var_sum = 0.0;
    for (const auto &run : runs) {
        const MetricEstimate &est = run[c].sampled.*metric;
        out.mean += est.mean;
        var_sum += est.stdErr * est.stdErr;
    }
    const double n = static_cast<double>(runs.size());
    out.mean /= n;
    out.stdErr = std::sqrt(var_sum) / n;
    out.ci95 = kCi95Z * out.stdErr;
    return out;
}

/** Cross-trace average of per-trace sampling estimates (all runs of
 *  config @p c must be sampled.active). */
SampleEstimates
averageEstimates(const std::vector<std::vector<SweepResult>> &runs,
                 std::size_t c)
{
    SampleEstimates out;
    out.active = true;
    out.unitRefs = runs.front()[c].sampled.unitRefs;
    out.intervalUnits = runs.front()[c].sampled.intervalUnits;
    out.warmupRefs = runs.front()[c].sampled.warmupRefs;
    for (const auto &run : runs) {
        out.units += run[c].sampled.units;
        out.measuredRefs += run[c].sampled.measuredRefs;
    }
    out.missRatio =
        combineEstimates(runs, c, &SampleEstimates::missRatio);
    out.warmMissRatio =
        combineEstimates(runs, c, &SampleEstimates::warmMissRatio);
    out.trafficRatio =
        combineEstimates(runs, c, &SampleEstimates::trafficRatio);
    out.warmTrafficRatio =
        combineEstimates(runs, c, &SampleEstimates::warmTrafficRatio);
    out.nibbleTrafficRatio = combineEstimates(
        runs, c, &SampleEstimates::nibbleTrafficRatio);
    out.warmNibbleTrafficRatio = combineEstimates(
        runs, c, &SampleEstimates::warmNibbleTrafficRatio);
    return out;
}

/** Cross-trace average of coherency summaries (all runs of config
 *  @p c must be coherency.active): derived doubles average exactly
 *  like the headline metrics, counters become rounded integer
 *  means. */
CoherencySummary
averageCoherency(const std::vector<std::vector<SweepResult>> &runs,
                 std::size_t c)
{
    const double n = static_cast<double>(runs.size());
    CoherencySummary out;
    out.active = true;
    out.cores = runs.front()[c].coherency.cores;
    out.coreMissRatios.assign(out.cores, 0.0);
    double reads = 0.0, rfo = 0.0, upgrades = 0.0, invals = 0.0;
    double c2c = 0.0, c2c_words = 0.0, snoop_words = 0.0;
    for (const auto &run : runs) {
        const CoherencySummary &coh = run[c].coherency;
        occsim_assert(coh.cores == out.cores,
                      "core count differs between runs");
        reads += static_cast<double>(coh.busReads);
        rfo += static_cast<double>(coh.busReadForOwnership);
        upgrades += static_cast<double>(coh.busUpgrades);
        invals += static_cast<double>(coh.invalidations);
        c2c += static_cast<double>(coh.cacheToCacheTransfers);
        c2c_words += static_cast<double>(coh.c2cWords);
        snoop_words += static_cast<double>(coh.snoopWritebackWords);
        out.invalidationsPerKiloRef += coh.invalidationsPerKiloRef;
        out.coherenceTrafficRatio += coh.coherenceTrafficRatio;
        for (std::uint32_t i = 0; i < out.cores; ++i)
            out.coreMissRatios[i] += coh.coreMissRatios[i];
    }
    const auto mean = [n](double sum) {
        return static_cast<std::uint64_t>(std::llround(sum / n));
    };
    out.busReads = mean(reads);
    out.busReadForOwnership = mean(rfo);
    out.busUpgrades = mean(upgrades);
    out.invalidations = mean(invals);
    out.cacheToCacheTransfers = mean(c2c);
    out.c2cWords = mean(c2c_words);
    out.snoopWritebackWords = mean(snoop_words);
    out.invalidationsPerKiloRef /= n;
    out.coherenceTrafficRatio /= n;
    for (std::uint32_t i = 0; i < out.cores; ++i)
        out.coreMissRatios[i] /= n;
    return out;
}

} // namespace

SweepResult
summarizeStats(const CacheConfig &config, std::uint64_t gross_bytes,
               const CacheStats &stats)
{
    SweepResult result;
    result.config = config;
    result.grossBytes = gross_bytes;
    result.missRatio = stats.missRatio();
    result.warmMissRatio = stats.warmMissRatio();
    result.trafficRatio = stats.trafficRatio();
    result.warmTrafficRatio = stats.warmTrafficRatio();
    result.nibbleTrafficRatio = stats.scaledTrafficRatio(kNibbleBus);
    result.warmNibbleTrafficRatio =
        stats.warmScaledTrafficRatio(kNibbleBus);
    return result;
}

SweepResult
summarizeCache(const Cache &cache)
{
    return summarizeStats(cache.config(),
                          cache.geometry().grossBytes(),
                          cache.stats());
}

SweepResult
summarizeSplit(const CacheConfig &config, const SplitCache &split)
{
    CacheStats merged = split.icache().stats();
    merged.mergeFrom(split.dcache().stats());
    return summarizeStats(config, split.grossBytes(), merged);
}

SweepResult
summarizeCoherent(const CacheConfig &config,
                  const CoherentSystem &system)
{
    CacheStats merged = system.core(0).stats();
    std::uint64_t gross = system.core(0).geometry().grossBytes();
    for (std::uint32_t c = 1; c < system.numCores(); ++c) {
        merged.mergeFrom(system.core(c).stats());
        gross += system.core(c).geometry().grossBytes();
    }
    SweepResult result = summarizeStats(config, gross, merged);

    const CoherencyStats &bus = system.bus();
    CoherencySummary &coh = result.coherency;
    coh.active = true;
    coh.cores = system.numCores();
    coh.busReads = bus.busReads;
    coh.busReadForOwnership = bus.busReadForOwnership;
    coh.busUpgrades = bus.busUpgrades;
    coh.invalidations = bus.invalidations;
    coh.cacheToCacheTransfers = bus.cacheToCacheTransfers;
    coh.c2cWords = bus.c2cWords;
    coh.snoopWritebackWords = bus.snoopWritebackWords;
    const std::uint64_t total_refs =
        merged.accesses() + merged.writeAccesses();
    coh.invalidationsPerKiloRef =
        total_refs == 0 ? 0.0
                        : 1000.0 *
                              static_cast<double>(bus.invalidations) /
                              static_cast<double>(total_refs);
    coh.coherenceTrafficRatio =
        merged.accesses() == 0
            ? 0.0
            : static_cast<double>(bus.c2cWords +
                                  bus.snoopWritebackWords) /
                  static_cast<double>(merged.accesses());
    coh.coreMissRatios.reserve(system.numCores());
    for (std::uint32_t c = 0; c < system.numCores(); ++c)
        coh.coreMissRatios.push_back(system.core(c).stats().missRatio());
    return result;
}

SweepResult
runSingle(const CacheConfig &config, TraceSource &source,
          std::uint64_t max_refs)
{
    if (config.partition == CachePartition::SplitID) {
        SplitCache split = makeEvenSplit(config);
        split.run(source, max_refs);
        return summarizeSplit(config, split);
    }
    Cache cache(config);
    cache.run(source, max_refs);
    return summarizeCache(cache);
}

std::vector<SweepResult>
averageResults(const std::vector<std::vector<SweepResult>> &runs)
{
    occsim_assert(!runs.empty(), "no runs to average");
    const std::size_t num_configs = runs.front().size();
    for (const auto &run : runs) {
        occsim_assert(run.size() == num_configs,
                      "runs cover different config counts");
    }

    std::vector<SweepResult> averaged = runs.front();
    const double n = static_cast<double>(runs.size());
    for (std::size_t c = 0; c < num_configs; ++c) {
        SweepResult &out = averaged[c];
        out.missRatio = 0.0;
        out.warmMissRatio = 0.0;
        out.trafficRatio = 0.0;
        out.warmTrafficRatio = 0.0;
        out.nibbleTrafficRatio = 0.0;
        out.warmNibbleTrafficRatio = 0.0;
        bool all_sampled = true;
        bool all_coherent = true;
        for (const auto &run : runs) {
            occsim_assert(run[c].config == out.config,
                          "config order differs between runs");
            out.missRatio += run[c].missRatio;
            out.warmMissRatio += run[c].warmMissRatio;
            out.trafficRatio += run[c].trafficRatio;
            out.warmTrafficRatio += run[c].warmTrafficRatio;
            out.nibbleTrafficRatio += run[c].nibbleTrafficRatio;
            out.warmNibbleTrafficRatio += run[c].warmNibbleTrafficRatio;
            all_sampled = all_sampled && run[c].sampled.active;
            all_coherent = all_coherent && run[c].coherency.active;
        }
        out.missRatio /= n;
        out.warmMissRatio /= n;
        out.trafficRatio /= n;
        out.warmTrafficRatio /= n;
        out.nibbleTrafficRatio /= n;
        out.warmNibbleTrafficRatio /= n;
        out.sampled = all_sampled ? averageEstimates(runs, c)
                                  : SampleEstimates{};
        out.coherency = all_coherent ? averageCoherency(runs, c)
                                     : CoherencySummary{};
    }
    return averaged;
}

} // namespace occsim
