/**
 * @file
 * Single-pass multi-configuration sweep engine (generalized stack
 * simulation).
 *
 * The paper chose LRU precisely because "LRU permits more efficient
 * simulation" (Mattson et al., reference [16]): one pass over a trace
 * can price every cache size at once. This engine generalizes that
 * observation to the full (net size, associativity) grid of a sweep
 * at a fixed block size, for configurations where the Cache model is
 * a pure per-set LRU stack:
 *
 *     LRU replacement + demand fetch + sub-block == block
 *     + write-allocate
 *
 * FIFO replacement under the same fetch/write conditions also rides
 * the engine: FIFO has no stack-inclusion property, so each FIFO grid
 * point simulates its own per-set residency ring during the same
 * trace pass (one tag scan per reference) instead of sharing the
 * distance computation — still one pass per set count for the whole
 * grid.
 *
 * Under those conditions a reference hits a cache with S sets and
 * associativity A exactly when fewer than A distinct blocks of its
 * set have been touched since its own last touch (the per-set LRU
 * stack-distance inclusion property), and the miss is a cold miss
 * exactly when it is among the first A fills of its set. Both facts
 * are config-independent functions of the reference stream, so ONE
 * pass per set count yields exact cold-start and warm-start miss
 * counts — and, because demand fetch moves exactly one block per
 * miss and write-through stores exactly one word per write, the
 * paper's traffic metrics — for every grid point at once.
 *
 * Set refinement ties the grid together: the set index for S sets is
 * a suffix of the index for 2S sets (block & (S-1)), so every level
 * shares the same block stream and differs only in how many index
 * bits it keeps. Each level maintains per-set last-touch times in an
 * order-statistics structure (TouchTimeSet: a sorted time array plus
 * a Fenwick tree of live counts), replacing the O(depth) linear
 * stack scan of the classic implementation with an O(log depth)
 * rank query per reference.
 *
 * Results are bit-identical to direct Cache simulation: the engine's
 * totals are loaded into a CacheStats (CacheStats::loadDemandRun)
 * and summarized through the very same derived-metric code paths
 * (summarizeStats) the direct engines use.
 */

#ifndef OCCSIM_MULTI_SINGLE_PASS_HH
#define OCCSIM_MULTI_SINGLE_PASS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "multi/sweep_runner.hh"
#include "trace/trace.hh"
#include "util/bitops.hh"

namespace occsim {

/**
 * Order-statistics multiset of block last-touch times.
 *
 * Times are inserted in strictly increasing order, so the backing
 * array stays sorted by construction; a Fenwick tree over array
 * positions counts the live (not yet superseded) entries, giving
 * O(log n) rank queries and updates where the classic LRU stack
 * needs an O(n) scan. Superseded entries are dropped lazily: the
 * array is compacted once more than half of it is dead, so memory
 * stays proportional to the live set.
 */
class TouchTimeSet
{
  public:
    /** Insert @p t, which must exceed every time ever inserted. */
    void insertNew(std::uint64_t t);

    /**
     * Re-touch: supersede the live entry @p prev with the new
     * maximal time @p t.
     * @return the number of live entries greater than @p prev — the
     *         number of distinct blocks touched since, i.e. the
     *         0-based LRU stack depth.
     */
    std::uint64_t touch(std::uint64_t prev, std::uint64_t t);

    /** Number of live entries (distinct blocks tracked). */
    std::uint64_t live() const { return live_; }

  private:
    /** Live entries among positions [1, pos] (1-based, inclusive). */
    std::uint64_t prefix(std::size_t pos) const;

    /** Append @p t as a live entry (t beyond every present time). */
    void append(std::uint64_t t);

    /** Drop dead entries once they dominate the array. */
    void maybeCompact();

    std::vector<std::uint64_t> times_;  ///< sorted; live and dead
    std::vector<std::uint8_t> alive_;   ///< parallel liveness flags
    std::vector<std::uint32_t> tree_;   ///< 1-based Fenwick of live counts
    std::uint64_t live_ = 0;
};

/**
 * Per-set LRU stack-distance tracker: one shared hash map of block
 * last-touch times plus one TouchTimeSet per set. This is the
 * O(log depth) replacement for the linear touchStack scan, shared by
 * the Mattson analyzers (num_sets fixed) and the single-pass sweep
 * engine (one tracker per set-count level).
 */
class SetLruTracker
{
  public:
    /** Distance returned for the first touch of a block. */
    static constexpr std::uint64_t kFirstTouch = ~0ULL;

    /** @param num_sets power-of-two set count. */
    explicit SetLruTracker(std::uint32_t num_sets);

    /**
     * Record a touch of @p block (a block address, i.e. addr >>
     * log2(blockSize)).
     * @return the 1-based LRU stack distance of the block within its
     *         set, or kFirstTouch if never seen before.
     */
    std::uint64_t touch(Addr block);

    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(mask_) + 1;
    }

    /** Set index of @p block at this tracker's set count. */
    std::uint32_t setOf(Addr block) const
    {
        return static_cast<std::uint32_t>(block & mask_);
    }

    /** Distinct blocks seen so far. */
    std::uint64_t distinctBlocks() const { return lastTouch_.size(); }

  private:
    Addr mask_;
    std::vector<TouchTimeSet> sets_;
    std::unordered_map<Addr, std::uint64_t> lastTouch_;
    std::uint64_t clock_ = 0;
};

/**
 * @return true when @p config can be priced by the single-pass
 * engine: LRU or FIFO replacement + demand fetch + sub-block == block
 * + write-allocate. (The write policy is free: SweepResult metrics
 * count reads only, and tag/replacement state is write-policy
 * independent.) LRU points share the stack-distance machinery; FIFO
 * has no inclusion property, so FIFO points each carry their own
 * per-set resident rings, but still ride the same trace pass.
 */
bool singlePassEligible(const CacheConfig &config);

/**
 * The single-pass sweep engine. Construction takes the configs of
 * one sweep — all singlePassEligible and sharing one block size —
 * and groups them into LEVELS, one per distinct (effective) set
 * count; each level holds one grid POINT per distinct (set count,
 * effective associativity) pair. One pass over a trace per level
 * produces exact counted miss, cold-miss, write-miss and traffic
 * totals for every point at once.
 *
 * Levels are fully independent (each owns its tracker and counters),
 * so callers may run them concurrently — runLevel(i, trace) from
 * one task per level — or call processTrace for the sequential
 * all-levels convenience. Each level must see the trace exactly
 * once.
 *
 * Exactness caveat: eviction-side bookkeeping that SweepResult does
 * not consume (residency histograms, copy-back write-back traffic)
 * is not modelled; write-through store traffic and all read-side
 * metrics are exact.
 */
class SinglePassEngine
{
  public:
    /** Raw per-config totals (for tests and instrumentation). */
    struct Counts
    {
        std::uint64_t accesses = 0;       ///< counted (read) refs
        std::uint64_t misses = 0;         ///< counted misses
        std::uint64_t coldMisses = 0;     ///< counted cold misses
        std::uint64_t ifetchAccesses = 0;
        std::uint64_t ifetchMisses = 0;
        std::uint64_t writeAccesses = 0;
        std::uint64_t writeMisses = 0;
    };

    /**
     * @param configs the sweep's fast-path configs; all must satisfy
     * singlePassEligible and share one block size.
     */
    explicit SinglePassEngine(const std::vector<CacheConfig> &configs);

    std::size_t size() const { return configs_.size(); }
    std::uint32_t blockSize() const { return 1u << blockBits_; }

    /** Number of set-count levels (independent trace passes). */
    std::size_t numLevels() const { return levels_.size(); }

    /** Set count of level @p level. */
    std::uint32_t levelSets(std::size_t level) const;

    /**
     * Drive level @p level over @p trace (up to @p max_refs refs,
     * 0 = all). Levels are independent; distinct levels may run
     * concurrently. A level can only be run once.
     * @return references consumed.
     */
    std::uint64_t runLevel(std::size_t level, const VectorTrace &trace,
                           std::uint64_t max_refs = 0);

    /** Run every level sequentially (convenience). */
    std::uint64_t processTrace(const VectorTrace &trace,
                               std::uint64_t max_refs = 0);

    /**
     * Summaries in config order, bit-identical to direct Cache
     * simulation of each config over the same references. Requires
     * every level to have run over the same trace.
     */
    std::vector<SweepResult> results() const;

    /** Raw totals for config @p config_index (tests). */
    Counts countsFor(std::size_t config_index) const;

    /**
     * Counted-reference LRU stack-distance histogram of the level
     * with @p num_sets sets: hist[d] = counted refs at per-set
     * distance d, for d in [1, cap); hist[cap] pools all deeper
     * reuses, where cap = max associativity of the level + 1.
     * hist[0] is unused. First touches are not in the histogram.
     */
    const std::vector<std::uint64_t> &
    distanceHistogram(std::uint32_t num_sets) const;

    /** References consumed per level (0 before running). */
    std::uint64_t refs() const;

  private:
    /** One (set count, associativity, replacement) grid point. */
    struct GridPoint
    {
        std::uint32_t assoc = 0;
        ReplacementPolicy policy = ReplacementPolicy::LRU;
        std::uint64_t misses = 0;        ///< counted misses
        std::uint64_t coldMisses = 0;    ///< counted cold misses
        std::uint64_t ifetchMisses = 0;
        std::uint64_t writeMisses = 0;
        /** LRU points: per-set fill count, saturated at assoc — a
         *  miss is cold while its set still has never-filled
         *  frames. */
        std::vector<std::uint32_t> fills;
        /** FIFO points: resident block address per frame (set-major,
         *  kEmptyFrame when never filled). FIFO has no stack
         *  inclusion, so each point simulates its own residency. */
        std::vector<Addr> ring;
        /** FIFO points: per-set fill sequence number. Frame filled by
         *  the n-th miss of a set is n % assoc — first-invalid-way
         *  fills followed by round-robin FIFO victims, exactly the
         *  direct Cache's order — and the miss is cold iff n < assoc. */
        std::vector<std::uint64_t> fillSeq;
    };

    /** FIFO ring sentinel: no block (block addresses have at least
     *  one high zero bit since blockSize >= 2). */
    static constexpr Addr kEmptyFrame = ~Addr(0);

    /** One set count: a tracker plus every point at that count. */
    struct Level
    {
        std::uint32_t numSets = 0;
        std::uint32_t minAssoc = 0;  ///< fast hit-everywhere cutoff
        bool hasFifo = false;  ///< disables the min-assoc shortcut
        std::uint32_t cap = 0;       ///< histogram pooling depth
        SetLruTracker tracker;
        std::vector<GridPoint> points;
        std::vector<std::uint64_t> hist;
        std::uint64_t firstTouches = 0;  ///< counted first touches
        std::uint64_t refs = 0;
        std::uint64_t counted = 0;
        std::uint64_t ifetches = 0;
        std::uint64_t writes = 0;

        explicit Level(std::uint32_t num_sets)
            : numSets(num_sets), tracker(num_sets)
        {
        }
    };

    std::vector<CacheConfig> configs_;
    std::uint32_t blockBits_;
    std::vector<Level> levels_;
    /** Per config: (level index, point index). */
    std::vector<std::pair<std::size_t, std::size_t>> configPoint_;
};

} // namespace occsim

#endif // OCCSIM_MULTI_SINGLE_PASS_HH
