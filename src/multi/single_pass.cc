#include "multi/single_pass.hh"

#include <algorithm>

#include "cache/cache_geometry.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

namespace {

/** Lowest set bit of a 1-based Fenwick position. */
inline std::size_t
lowbit(std::size_t i)
{
    return i & (~i + 1);
}

} // namespace

// ---------------------------------------------------------------- //
// TouchTimeSet
// ---------------------------------------------------------------- //

std::uint64_t
TouchTimeSet::prefix(std::size_t pos) const
{
    std::uint64_t sum = 0;
    for (; pos > 0; pos -= lowbit(pos))
        sum += tree_[pos];
    return sum;
}

void
TouchTimeSet::append(std::uint64_t t)
{
    times_.push_back(t);
    alive_.push_back(1);
    ++live_;
    const std::size_t n = times_.size();
    if (tree_.empty())
        tree_.push_back(0);  // 1-based; slot 0 unused
    // The Fenwick node for position n covers (n - lowbit(n), n].
    // Every entry ever inserted sits at a position <= n, so the node's
    // count is the total live count minus the live entries in
    // [1, n - lowbit(n)] — a plain point-update would miss the dead
    // entries recorded before the tree grew this far.
    tree_.push_back(
        static_cast<std::uint32_t>(live_ - prefix(n - lowbit(n))));
}

void
TouchTimeSet::insertNew(std::uint64_t t)
{
    append(t);
}

std::uint64_t
TouchTimeSet::touch(std::uint64_t prev, std::uint64_t t)
{
    // MRU fast path: the back entry is always live (entries die only
    // when superseded by a strictly newer maximum), and locality makes
    // re-touching the most recent block overwhelmingly common.
    if (times_.back() == prev) {
        times_.back() = t;
        return 0;
    }

    const auto it = std::lower_bound(times_.begin(), times_.end(), prev);
    const std::size_t pos =
        static_cast<std::size_t>(it - times_.begin()) + 1;
    const std::uint64_t above = live_ - prefix(pos);

    alive_[pos - 1] = 0;
    --live_;
    for (std::size_t i = pos; i < tree_.size(); i += lowbit(i))
        --tree_[i];

    append(t);
    maybeCompact();
    return above;
}

void
TouchTimeSet::maybeCompact()
{
    if (times_.size() < 64 || times_.size() <= 2 * live_)
        return;
    std::vector<std::uint64_t> survivors;
    survivors.reserve(live_);
    for (std::size_t i = 0; i < times_.size(); ++i) {
        if (alive_[i])
            survivors.push_back(times_[i]);
    }
    times_ = std::move(survivors);
    alive_.assign(times_.size(), 1);
    // All-alive Fenwick: node i counts its whole range.
    tree_.assign(times_.size() + 1, 0);
    for (std::size_t i = 1; i <= times_.size(); ++i)
        tree_[i] = static_cast<std::uint32_t>(lowbit(i));
}

// ---------------------------------------------------------------- //
// SetLruTracker
// ---------------------------------------------------------------- //

SetLruTracker::SetLruTracker(std::uint32_t num_sets)
    : mask_(num_sets - 1), sets_(num_sets)
{
    occsim_assert(num_sets > 0 && isPowerOfTwo(num_sets),
                  "set count must be a power of two");
}

std::uint64_t
SetLruTracker::touch(Addr block)
{
    const std::uint64_t t = ++clock_;
    TouchTimeSet &set = sets_[block & mask_];
    const auto [it, inserted] = lastTouch_.try_emplace(block, t);
    if (inserted) {
        set.insertNew(t);
        return kFirstTouch;
    }
    const std::uint64_t prev = it->second;
    it->second = t;
    return set.touch(prev, t) + 1;
}

// ---------------------------------------------------------------- //
// SinglePassEngine
// ---------------------------------------------------------------- //

bool
singlePassEligible(const CacheConfig &config)
{
    return (config.replacement == ReplacementPolicy::LRU ||
            config.replacement == ReplacementPolicy::FIFO) &&
           config.fetch == FetchPolicy::Demand &&
           config.subBlockSize == config.blockSize &&
           config.writeAllocate &&
           config.partition == CachePartition::Unified;
}

SinglePassEngine::SinglePassEngine(
    const std::vector<CacheConfig> &configs)
    : configs_(configs)
{
    occsim_assert(!configs_.empty(),
                  "engine needs at least one config");
    blockBits_ = floorLog2(configs_.front().blockSize);
    configPoint_.reserve(configs_.size());

    for (const CacheConfig &config : configs_) {
        occsim_assert(singlePassEligible(config),
                      "config %s is not single-pass eligible",
                      config.shortName().c_str());
        occsim_assert(config.blockSize == configs_.front().blockSize,
                      "engine configs must share one block size");
        const CacheGeometry geom(config);
        const std::uint32_t sets = geom.numSets();
        const std::uint32_t assoc = geom.assoc();
        const ReplacementPolicy policy = config.replacement;

        std::size_t li = levels_.size();
        for (std::size_t l = 0; l < levels_.size(); ++l) {
            if (levels_[l].numSets == sets) {
                li = l;
                break;
            }
        }
        if (li == levels_.size())
            levels_.emplace_back(sets);
        Level &lv = levels_[li];

        std::size_t pi = lv.points.size();
        for (std::size_t p = 0; p < lv.points.size(); ++p) {
            if (lv.points[p].assoc == assoc &&
                lv.points[p].policy == policy) {
                pi = p;
                break;
            }
        }
        if (pi == lv.points.size()) {
            GridPoint point;
            point.assoc = assoc;
            point.policy = policy;
            if (policy == ReplacementPolicy::FIFO) {
                point.ring.assign(
                    static_cast<std::size_t>(sets) * assoc,
                    kEmptyFrame);
                point.fillSeq.assign(sets, 0);
                lv.hasFifo = true;
            } else {
                point.fills.assign(sets, 0);
            }
            lv.points.push_back(std::move(point));
        }
        configPoint_.emplace_back(li, pi);
    }

    for (Level &lv : levels_) {
        std::uint32_t min_assoc = ~0u;
        std::uint32_t max_assoc = 0;
        for (const GridPoint &p : lv.points) {
            min_assoc = std::min(min_assoc, p.assoc);
            max_assoc = std::max(max_assoc, p.assoc);
        }
        lv.minAssoc = min_assoc;
        lv.cap = max_assoc + 1;
        lv.hist.assign(lv.cap + 1, 0);
    }
}

std::uint32_t
SinglePassEngine::levelSets(std::size_t level) const
{
    occsim_assert(level < levels_.size(), "level out of range");
    return levels_[level].numSets;
}

std::uint64_t
SinglePassEngine::runLevel(std::size_t level, const VectorTrace &trace,
                          std::uint64_t max_refs)
{
    occsim_assert(level < levels_.size(), "level out of range");
    OCCSIM_TELEM_STAGE("engine.single_pass");
    Level &lv = levels_[level];
    const std::vector<MemRef> &refs = trace.refs();
    const std::uint64_t limit =
        max_refs == 0
            ? refs.size()
            : std::min<std::uint64_t>(max_refs, refs.size());
    const std::uint32_t block_bits = blockBits_;
    const std::uint64_t cap = lv.cap;
    const std::uint64_t min_assoc = lv.minAssoc;

    for (std::uint64_t r = 0; r < limit; ++r) {
        const MemRef &ref = refs[r];
        const Addr block = ref.addr >> block_bits;
        const bool is_write = ref.isWrite();
        const std::uint64_t d = lv.tracker.touch(block);

        if (!is_write) {
            ++lv.counted;
            if (ref.isInstruction())
                ++lv.ifetches;
        } else {
            ++lv.writes;
        }

        if (d != SetLruTracker::kFirstTouch) {
            if (!is_write)
                ++lv.hist[d < cap ? d : cap];
            // FIFO points can miss at any LRU distance, so the
            // level-wide shortcut only applies to pure-LRU levels.
            if (!lv.hasFifo && d <= min_assoc)
                continue;  // hit at every grid point of this level
        } else if (!is_write) {
            ++lv.firstTouches;
        }

        const std::uint32_t set = lv.tracker.setOf(block);
        const bool is_ifetch = ref.isInstruction();
        for (GridPoint &p : lv.points) {
            // A miss is cold exactly while its set still has
            // never-filled frames: invalid ways are filled before the
            // replacement victim, and both read and write misses
            // allocate (write-allocate is an eligibility condition),
            // so the first `assoc` misses of a set each claim a fresh
            // frame. Only counted (read) misses are charged as cold
            // in the stats, matching Cache exactly.
            bool cold = false;
            if (p.policy == ReplacementPolicy::FIFO) {
                // No inclusion property: probe this point's own
                // resident ring for the set.
                Addr *ways =
                    p.ring.data() +
                    static_cast<std::size_t>(set) * p.assoc;
                bool hit = false;
                for (std::uint32_t w = 0; w < p.assoc; ++w) {
                    if (ways[w] == block) {
                        hit = true;
                        break;
                    }
                }
                if (hit)
                    continue;
                // The n-th miss of a set fills frame n % assoc: the
                // first assoc misses claim the invalid ways in order,
                // then onFill's move-to-back makes the FIFO victim
                // walk the ways round-robin from way 0 — the direct
                // Cache's exact sequence.
                std::uint64_t &seq = p.fillSeq[set];
                ways[seq % p.assoc] = block;
                cold = seq < p.assoc;
                ++seq;
            } else {
                if (d != SetLruTracker::kFirstTouch && d <= p.assoc)
                    continue;  // hit at this associativity
                std::uint32_t &filled = p.fills[set];
                if (filled < p.assoc) {
                    ++filled;
                    cold = true;
                }
            }
            if (is_write) {
                ++p.writeMisses;
            } else {
                ++p.misses;
                if (is_ifetch)
                    ++p.ifetchMisses;
                if (cold)
                    ++p.coldMisses;
            }
        }
    }
    lv.refs += limit;
    OCCSIM_TELEM_COUNT("engine.single_pass.refs",
                       limit * lv.points.size());
    OCCSIM_TELEM_COUNT("engine.single_pass.bytes",
                       limit * sizeof(MemRef));
    return limit;
}

std::uint64_t
SinglePassEngine::processTrace(const VectorTrace &trace,
                               std::uint64_t max_refs)
{
    std::uint64_t consumed = 0;
    for (std::size_t l = 0; l < levels_.size(); ++l)
        consumed = runLevel(l, trace, max_refs);
    return consumed;
}

std::vector<SweepResult>
SinglePassEngine::results() const
{
    for (const Level &lv : levels_) {
        occsim_assert(lv.refs == levels_.front().refs,
                      "levels observed different reference counts");
    }
    std::vector<SweepResult> out;
    out.reserve(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
        const CacheConfig &config = configs_[i];
        const auto [li, pi] = configPoint_[i];
        const Level &lv = levels_[li];
        const GridPoint &p = lv.points[pi];
        const CacheGeometry geom(config);
        const std::uint32_t words = geom.wordsPerSubBlock();
        CacheStats stats(geom.subBlocksPerBlock(),
                         geom.subBlocksPerBlock() * words);
        stats.loadDemandRun(lv.counted, lv.ifetches, p.misses,
                            p.ifetchMisses, p.coldMisses, lv.writes,
                            p.writeMisses,
                            config.write == WritePolicy::WriteThrough,
                            words);
        out.push_back(summarizeStats(config, geom.grossBytes(), stats));
    }
    return out;
}

SinglePassEngine::Counts
SinglePassEngine::countsFor(std::size_t config_index) const
{
    occsim_assert(config_index < configs_.size(),
                  "config index out of range");
    const auto [li, pi] = configPoint_[config_index];
    const Level &lv = levels_[li];
    const GridPoint &p = lv.points[pi];
    Counts counts;
    counts.accesses = lv.counted;
    counts.misses = p.misses;
    counts.coldMisses = p.coldMisses;
    counts.ifetchAccesses = lv.ifetches;
    counts.ifetchMisses = p.ifetchMisses;
    counts.writeAccesses = lv.writes;
    counts.writeMisses = p.writeMisses;
    return counts;
}

const std::vector<std::uint64_t> &
SinglePassEngine::distanceHistogram(std::uint32_t num_sets) const
{
    for (const Level &lv : levels_) {
        if (lv.numSets == num_sets)
            return lv.hist;
    }
    panic("no level with %u sets in this engine", num_sets);
}

std::uint64_t
SinglePassEngine::refs() const
{
    return levels_.front().refs;
}

} // namespace occsim
