/**
 * @file
 * Three-way miss classification (compulsory / capacity / conflict)
 * for conventional (sub-block == block) caches.
 *
 *  - compulsory: first reference ever to the block;
 *  - capacity: non-compulsory miss that a fully-associative LRU
 *    cache of the same net size would also take;
 *  - conflict: miss caused purely by restricted placement (hits in
 *    the fully-associative cache).
 *
 * This decomposition quantifies two of the paper's inherited claims:
 * that 4-way set-associative mapping "provides hit ratios very close
 * to those of a fully associative design" (Smith 1978, the paper's
 * reference [15]) — i.e. the conflict share at 4-way is small — and
 * that tiny caches are dominated by capacity misses no matter the
 * organisation.
 */

#ifndef OCCSIM_MULTI_MISS_CLASSIFIER_HH
#define OCCSIM_MULTI_MISS_CLASSIFIER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/cache.hh"
#include "trace/trace.hh"

namespace occsim {

/** Breakdown of one run's misses. */
struct MissBreakdown
{
    std::uint64_t refs = 0;
    std::uint64_t misses = 0;
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;

    double missRatio() const;
    double conflictShare() const;  ///< conflict / misses
};

/**
 * Classifies the misses of a set-associative cache against its
 * fully-associative shadow. Requires sub-block == block (the classic
 * model) and LRU replacement.
 */
class MissClassifier
{
  public:
    /** @param config the cache under study (sub == block, LRU). */
    explicit MissClassifier(const CacheConfig &config);

    /** Process one reference (writes are routed like reads here:
     *  classification is placement-only). */
    void process(Addr addr);

    /** Process every reference of @p trace. */
    void processTrace(const VectorTrace &trace);

    const MissBreakdown &breakdown() const { return breakdown_; }

  private:
    Cache cache_;
    /** Fully-associative LRU shadow: block addresses, MRU at back. */
    std::vector<Addr> shadow_;
    std::uint32_t shadowCapacity_;
    std::uint32_t blockBits_;
    std::unordered_set<Addr> everSeen_;
    MissBreakdown breakdown_;
};

} // namespace occsim

#endif // OCCSIM_MULTI_MISS_CLASSIFIER_HH
