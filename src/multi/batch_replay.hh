/**
 * @file
 * Config-blocked batched replay over a packed trace.
 *
 * The direct sweep engine streams the whole trace through one Cache
 * at a time: every configuration pays one full pass of trace memory
 * traffic plus the per-reference decode and policy branches of
 * Cache::access(). BatchReplay restructures that loop around the
 * memory system instead of around the configs:
 *
 *  - the trace is pre-decoded once into a PackedTrace (8 bytes per
 *    reference, see packed_trace.hh);
 *  - configurations are grouped into tiles of K caches, and the
 *    packed trace is streamed chunk by chunk — every chunk (256 KB by
 *    default, comfortably L2-resident) is replayed through all K
 *    caches of the tile before the next chunk is touched, so the
 *    trace is read from DRAM once per tile instead of once per
 *    config;
 *  - each cache replays through Cache::replayPacked, the kernel
 *    specialized at construction for its (fetch x write x
 *    write-allocate) policy combination, so the per-reference policy
 *    switches are gone from the inner loop.
 *
 * Results are bit-identical to running Cache::access over the same
 * references in order — tiles and chunks change only the interleaving
 * BETWEEN independent caches, never the reference order seen by any
 * one cache. Tiles share no mutable state, so runTile() calls for
 * different tiles may run on different threads (that is how
 * ParallelSweepRunner schedules them).
 */

#ifndef OCCSIM_MULTI_BATCH_REPLAY_HH
#define OCCSIM_MULTI_BATCH_REPLAY_HH

#include <memory>
#include <vector>

#include "multi/sweep_runner.hh"
#include "trace/packed_trace.hh"

namespace occsim {

/** Batched multi-configuration replay of packed traces. */
class BatchReplay
{
  public:
    /** Configs per tile: 8 caches per trace chunk keeps the chunk hot
     *  in L2 across the tile without blowing the per-cache state out
     *  of cache. */
    static constexpr std::size_t kDefaultTileConfigs = 8;
    /** Records per chunk: 32768 x 8 B = 256 KB of trace per block. */
    static constexpr std::size_t kDefaultChunkRecords = 32768;

    /**
     * @param configs one result slot per entry.
     * @param tile_configs caches simulated per trace chunk.
     * @param chunk_records packed records replayed per chunk (the
     *        differential fuzzer uses deliberately awkward values
     *        like 7 to exercise chunk-boundary handling).
     */
    explicit BatchReplay(
        const std::vector<CacheConfig> &configs,
        std::size_t tile_configs = kDefaultTileConfigs,
        std::size_t chunk_records = kDefaultChunkRecords);

    std::size_t size() const { return caches_.size(); }
    std::size_t numTiles() const { return numTiles_; }

    /**
     * Replay up to @p max_refs records (0 = all) of @p trace through
     * every cache of tile @p tile and finalize their residencies.
     * Tiles are independent; callers may run them concurrently.
     * Repeated passes accumulate as if the traces were concatenated
     * (same contract as Cache::run).
     */
    void runTile(std::size_t tile, const PackedTrace &trace,
                 std::uint64_t max_refs = 0);

    /**
     * Replay @p trace through every tile in order (the sequential
     * driver; sweeps schedule runTile themselves).
     * @return records consumed per config.
     */
    std::uint64_t run(const PackedTrace &trace,
                      std::uint64_t max_refs = 0);

    const Cache &cache(std::size_t i) const { return *caches_[i]; }
    Cache &cache(std::size_t i) { return *caches_[i]; }

    /** Summaries in config order. */
    std::vector<SweepResult> results() const;

  private:
    std::size_t tileConfigs_;
    std::size_t chunkRecords_;
    std::size_t numTiles_;
    std::vector<std::unique_ptr<Cache>> caches_;
};

} // namespace occsim

#endif // OCCSIM_MULTI_BATCH_REPLAY_HH
