/**
 * @file
 * SMARTS-style systematic statistical sampling over a packed trace.
 *
 * Every other engine in this library is exact: it prices every
 * reference, so cost grows linearly with trace length and the paper
 * grid is stuck at ~1M-reference runs. The sampling engine prices
 * only a systematic subset of fixed-size MEASUREMENT UNITS and
 * functionally warms the cache between them — tag, valid-bit, and
 * replacement state evolve bit-identically to a full run (through the
 * Record=false twin of the specialized replay kernels, see
 * Cache::warmPacked), but no statistics are recorded, which removes
 * the per-reference accounting cost from the (k-1)/k of the trace
 * between units. Each unit's metrics become one observation; the
 * engine reports per-metric means with standard errors and 95%
 * confidence intervals (stats/estimate.hh), because a sampled number
 * without its uncertainty is a lie.
 *
 * On top of per-config sampling sits checkpoint amortization: for
 * LRU + demand + sub-block==block + write-allocate configs, the cache
 * content of every (set count, associativity) point is a prefix of
 * one per-set LRU stack (the inclusion property the single-pass
 * engine exploits). One warming pass per (trace, block size)
 * maintains a maxAssoc-deep MRU array per set count and snapshots it
 * at every measurement-unit boundary ("live points"); each config
 * then replays only the measured units, seeding its frames from the
 * snapshot (Cache::seedWarmState), so the whole size x assoc grid
 * amortizes a single warming sweep. The checkpoint path is
 * bit-identical to warming each config individually for every
 * SweepResult metric (the differential tests in
 * tests/test_sample_replay.cpp enforce this), because under LRU the
 * top-A rows reproduce exact contents, recency, and ever-filled
 * cold-start classification.
 *
 * This engine is NEVER auto-routed: exact engines remain the default,
 * and sampled results must be requested explicitly
 * (SweepEngine::Sampled) so nobody mistakes an estimate for a count.
 */

#ifndef OCCSIM_MULTI_SAMPLE_REPLAY_HH
#define OCCSIM_MULTI_SAMPLE_REPLAY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "stats/estimate.hh"
#include "trace/packed_trace.hh"

namespace occsim {

struct SweepResult;

/** Sampling knobs of one sampled sweep. */
struct SampleSpec
{
    /** References per measurement unit. */
    std::uint64_t unitRefs = 4096;

    /** Sampling interval k: one unit is measured out of every
     *  k * unitRefs references (systematic sampling). */
    std::uint64_t intervalUnits = 16;

    /** References skipped (functionally warmed, never measured) at
     *  the start of the trace. */
    std::uint64_t warmupRefs = 0;

    /** Seed for the stratified unit placement. */
    std::uint64_t seed = 1;

    /**
     * Place each measured unit uniformly at random within its
     * interval (stratified systematic sampling) instead of always at
     * the interval start. Deterministic given seed; on by default
     * because periodic program behavior aliasing against a fixed
     * sampling period is the classic systematic-sampling failure
     * mode.
     */
    bool stratified = true;

    /**
     * Disable checkpoint amortization: every config warms its own
     * cache through the full trace (still at Record=false kernel
     * speed). For the differential tests proving the checkpoint path
     * bit-identical, and for honesty experiments; slower, never
     * needed in production.
     */
    bool forceDirect = false;
};

/** One measurement unit: references [begin, end) of the trace. */
struct SampleUnit
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/**
 * Plan the measured units over @p limit references: one unit of
 * spec.unitRefs per interval of spec.unitRefs * spec.intervalUnits
 * references, starting after spec.warmupRefs, placed at the interval
 * start (or uniformly within the interval when spec.stratified).
 * Partial intervals at the trace tail are dropped — a short unit
 * would be a differently-distributed observation. If nothing fits
 * (short trace or oversized warmup) and @p limit > 0, a single
 * fallback unit covering the trace tail is planned so smoke-length
 * runs still measure something.
 */
std::vector<SampleUnit> planSampleUnits(std::uint64_t limit,
                                        const SampleSpec &spec);

/** @return true when @p config can ride the shared warming pass +
 *  live-point checkpoints (LRU + demand + sub-block == block +
 *  write-allocate: the LRU-stack-inclusion family). */
bool checkpointEligible(const CacheConfig &config);

/** Per-config sampling summary carried on SweepResult. */
struct SampleEstimates
{
    /** True when this result came from the sampling engine (exact
     *  engines leave it false and every estimate zero). */
    bool active = false;

    std::uint64_t units = 0;          ///< measured units
    std::uint64_t unitRefs = 0;       ///< refs per unit (spec)
    std::uint64_t intervalUnits = 0;  ///< sampling interval k (spec)
    std::uint64_t warmupRefs = 0;     ///< warmup prefix (spec)
    std::uint64_t measuredRefs = 0;   ///< total refs inside units

    MetricEstimate missRatio;
    MetricEstimate warmMissRatio;
    MetricEstimate trafficRatio;
    MetricEstimate warmTrafficRatio;
    MetricEstimate nibbleTrafficRatio;
    MetricEstimate warmNibbleTrafficRatio;
};

/**
 * The sampling engine for one (trace, config grid) pair.
 *
 * Lifecycle: construct with the grid and spec, prepare() with the
 * trace (plans units, allocates warm state), run every warm task,
 * then every measure task (warm tasks must ALL finish first — the
 * barrier between the two phases is the caller's, so a pool can run
 * each phase as one parallelFor), then collect results(). Tasks are
 * independent within a phase: warm task f owns block-size family f's
 * rows and checkpoints, measure task c owns config c's cache and
 * estimators.
 */
class SampleReplay
{
  public:
    SampleReplay(const std::vector<CacheConfig> &configs,
                 const SampleSpec &spec);

    /** Plan units over @p trace (capped at @p max_refs, 0 = all) and
     *  allocate the warming families. Must precede the tasks. */
    void prepare(const PackedTrace &trace, std::uint64_t max_refs);

    /** One warming pass per block-size family with >= 1
     *  checkpoint-eligible config (zero when spec.forceDirect). */
    std::size_t numWarmTasks() const { return families_.size(); }
    void runWarmTask(std::size_t family, const PackedTrace &trace);

    /** One measure task per config. */
    std::size_t numMeasureTasks() const { return configs_.size(); }
    void runMeasureTask(std::size_t config_index,
                        const PackedTrace &trace);

    /** Summaries in config order: headline doubles hold the unit
     *  means, SweepResult::sampled the full estimates. */
    std::vector<SweepResult> results() const;

    /** The planned units (after prepare()). */
    const std::vector<SampleUnit> &units() const { return units_; }

    /** Total references inside measured units (after prepare()). */
    std::uint64_t measuredRefs() const { return measuredRefs_; }

  private:
    /** Per-set MRU block-address array for one set count, maxAssoc
     *  deep, plus its per-unit live-point snapshots. */
    struct WarmGroup
    {
        std::uint32_t numSets = 0;
        std::uint32_t assoc = 0;  ///< max assoc among member configs
        /** numSets * assoc block addresses, MRU first per row;
         *  ~Addr(0) = empty slot. */
        std::vector<Addr> rows;
        /** units.size() snapshots of rows, concatenated. */
        std::vector<Addr> checkpoints;
    };

    /** All warm groups of one block size (one warming pass). */
    struct WarmFamily
    {
        std::uint32_t blockBits = 0;
        std::vector<WarmGroup> groups;
    };

    /** Checkpoint route of one config: which family/group serves it
     *  (family < 0 = direct per-config warming). */
    struct Route
    {
        std::int32_t family = -1;
        std::int32_t group = -1;
    };

    template <std::uint32_t A>
    static void updateRowsSpec(Addr *rows, std::uint32_t set_mask,
                               std::uint32_t block_bits,
                               const PackedRecord *refs,
                               std::size_t n);
    static void updateRows(WarmGroup &group, std::uint32_t block_bits,
                           const PackedRecord *refs, std::size_t n);

    SampleSpec spec_;
    std::vector<CacheConfig> configs_;
    std::vector<Route> routes_;
    std::vector<WarmFamily> families_;
    std::vector<SampleUnit> units_;
    std::uint64_t limit_ = 0;
    std::uint64_t measuredRefs_ = 0;
    // Per-config outputs, each written by that config's measure task
    // only (no sharing within a phase).
    std::vector<SampleEstimates> estimates_;
    /** 6 unit means per config, in summarizeStats field order. */
    std::vector<std::array<double, 6>> means_;
    std::vector<std::uint64_t> grossBytes_;
};

} // namespace occsim

#endif // OCCSIM_MULTI_SAMPLE_REPLAY_HH
