#include "multi/parallel_sweep.hh"

#include <algorithm>

#include "multi/sweep_detail.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

namespace {

using sweep_detail::ConfigPartition;
using sweep_detail::partitionConfigs;
using sweep_detail::poolOrGlobal;
using sweep_detail::selectConfigs;

/** Bitwise SweepResult equality (the fast path's contract). */
bool
sameSweepResult(const SweepResult &a, const SweepResult &b)
{
    return a.grossBytes == b.grossBytes &&
           a.missRatio == b.missRatio &&
           a.warmMissRatio == b.warmMissRatio &&
           a.trafficRatio == b.trafficRatio &&
           a.warmTrafficRatio == b.warmTrafficRatio &&
           a.nibbleTrafficRatio == b.nibbleTrafficRatio &&
           a.warmNibbleTrafficRatio == b.warmNibbleTrafficRatio;
}

} // namespace

ParallelSweepRunner::ParallelSweepRunner(
    const std::vector<CacheConfig> &configs, ThreadPool *pool,
    SweepEngine engine, bool allow_sharding)
    : pool_(pool), engineMode_(engine),
      allowSharding_(allow_sharding), configs_(configs),
      routes_(configs.size())
{
    occsim_assert(!configs_.empty(), "sweep needs at least one config");

    const ConfigPartition part = partitionConfigs(configs_, engine);

    directIndex_ = part.direct;

    // Split I/D configs route to dedicated SplitCache pairs under
    // every engine mode: the pair partitions by reference kind, which
    // none of the batched kernels model.
    for (const std::size_t i : directIndex_) {
        if (configs_[i].partition != CachePartition::SplitID)
            continue;
        routes_[i].engine = kRouteSplit;
        routes_[i].slot = static_cast<std::uint32_t>(splits_.size());
        splitIndex_.push_back(i);
        const CacheConfig half = evenSplitHalf(configs_[i]);
        splits_.push_back(std::make_unique<SplitCache>(half, half));
    }

    // Fused group routing happens here — the grouping key is pure
    // config geometry, so unlike sharding it needs no trace. Groups
    // of one stay batched: a lone config gains nothing from the
    // group pass but still pays the plane indirection.
    if (engine != SweepEngine::DirectOnly && allowSharding_) {
        for (const auto &group : fusedGroups(configs_, part.direct)) {
            if (group.size() < 2)
                continue;
            const auto g = static_cast<std::uint32_t>(fused_.size());
            for (std::size_t k = 0; k < group.size(); ++k) {
                routes_[group[k]].engine = kRouteFused;
                routes_[group[k]].slot =
                    static_cast<std::uint32_t>(fusedSlots_.size());
                fusedSlots_.emplace_back(
                    g, static_cast<std::uint32_t>(k));
            }
            fusedIndex_.push_back(group);
            fused_.push_back(std::make_unique<FusedReplay>(
                selectConfigs(configs_, group)));
        }
    }

    batchIndex_.clear();
    for (const std::size_t i : directIndex_) {
        if (routes_[i].engine == kRouteFused ||
            routes_[i].engine == kRouteSplit)
            continue;
        routes_[i].engine = kRouteDirect;
        routes_[i].slot = static_cast<std::uint32_t>(batchIndex_.size());
        batchIndex_.push_back(i);
    }
    if (engine == SweepEngine::DirectOnly) {
        caches_.reserve(batchIndex_.size());
        for (const std::size_t i : batchIndex_)
            caches_.push_back(std::make_unique<Cache>(configs_[i]));
    } else if (!batchIndex_.empty()) {
        batch_ = std::make_unique<BatchReplay>(
            selectConfigs(configs_, batchIndex_));
    }

    engines_.reserve(part.groups.size());
    engineIndex_ = part.groups;
    for (std::size_t g = 0; g < part.groups.size(); ++g) {
        for (std::size_t k = 0; k < part.groups[g].size(); ++k) {
            const std::size_t i = part.groups[g][k];
            routes_[i].engine = static_cast<std::int32_t>(g);
            routes_[i].slot = static_cast<std::uint32_t>(k);
        }
        engines_.push_back(std::make_unique<SinglePassEngine>(
            selectConfigs(configs_, part.groups[g])));
    }

    if (engine == SweepEngine::CrossCheck) {
        // Every config is on an optimized engine (single-pass or
        // batched); shadow every 4th one (at least one) on the direct
        // engine and have run() verify the summaries bitwise.
        const std::size_t stride =
            std::max<std::size_t>(1, configs_.size() / 4);
        for (std::size_t i = 0; i < configs_.size(); i += stride) {
            // Split pairs are already on the direct engine (a
            // dedicated SplitCache) — shadowing one would compare the
            // same code against itself.
            if (routes_[i].engine == kRouteSplit)
                continue;
            shadowIndex_.push_back(i);
            shadowCaches_.push_back(
                std::make_unique<Cache>(configs_[i]));
        }
    }
}

bool
ParallelSweepRunner::fastPathed(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    return routes_[i].engine >= 0;
}

std::size_t
ParallelSweepRunner::fastPathCount() const
{
    return configs_.size() - directIndex_.size();
}

std::size_t
ParallelSweepRunner::batchedCount() const
{
    return batch_ != nullptr ? batch_->size() : 0;
}

bool
ParallelSweepRunner::sharded(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    return routes_[i].engine == kRouteShard;
}

bool
ParallelSweepRunner::fused(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    return routes_[i].engine == kRouteFused;
}

bool
ParallelSweepRunner::split(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    return routes_[i].engine == kRouteSplit;
}

ShardTelemetry
ParallelSweepRunner::shardTelemetry() const
{
    ShardTelemetry telem;
    for (const auto &engine : shards_)
        telem.accumulate(*engine);
    for (const auto &engine : fused_) {
        if (engine->numShards() > 1)
            telem.accumulate(*engine);
    }
    return telem;
}

void
ParallelSweepRunner::finalizeRoutes(unsigned threads,
                                    std::uint64_t limit)
{
    if (routesFinal_)
        return;
    routesFinal_ = true;
    if (!allowSharding_ || (batch_ == nullptr && fused_.empty()))
        return;  // pinned, DirectOnly, or nothing to refine

    // Task inventory if nothing is sharded: batch tiles, one task per
    // fused group, plus single-pass levels. When that alone saturates
    // the pool, task parallelism already wins and sharding only adds
    // merge overhead.
    std::size_t competing =
        (batch_ != nullptr ? batch_->numTiles() : 0) + fused_.size();
    for (const auto &engine : engines_)
        competing += engine->numLevels();

    const ShardMode mode = shardModeFromEnv();

    // Fused groups shard as a unit: every member shares the grouping
    // geometry, so one member's verdict (and shard count) is the
    // group's. Nothing has replayed yet, so rebuilding the engine
    // with shards loses no state.
    for (std::size_t g = 0; g < fused_.size(); ++g) {
        const CacheConfig &rep = configs_[fusedIndex_[g].front()];
        if (shouldShard(mode, rep, threads, limit, competing)) {
            fused_[g] = std::make_unique<FusedReplay>(
                selectConfigs(configs_, fusedIndex_[g]),
                planShardCount(rep, threads));
        }
    }

    if (batch_ == nullptr)
        return;
    std::vector<std::size_t> batch_list;
    for (const std::size_t i : batchIndex_) {
        if (shouldShard(mode, configs_[i], threads, limit,
                        competing)) {
            routes_[i].engine = kRouteShard;
            routes_[i].slot =
                static_cast<std::uint32_t>(shards_.size());
            shardIndex_.push_back(i);
            shards_.push_back(std::make_unique<ShardReplay>(
                configs_[i], planShardCount(configs_[i], threads)));
        } else {
            batch_list.push_back(i);
        }
    }
    if (shards_.empty())
        return;

    // Rebuild the batched engine over the remaining configs; nothing
    // has replayed yet, so no state is lost.
    batchIndex_ = batch_list;
    for (std::size_t j = 0; j < batchIndex_.size(); ++j) {
        routes_[batchIndex_[j]].engine = kRouteDirect;
        routes_[batchIndex_[j]].slot = static_cast<std::uint32_t>(j);
    }
    batch_ = batchIndex_.empty()
                 ? nullptr
                 : std::make_unique<BatchReplay>(
                       selectConfigs(configs_, batchIndex_));
}

const Cache &
ParallelSweepRunner::cache(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    occsim_assert(routes_[i].engine != kRouteShard,
                  "config %zu (%s) is served by the set-sharded "
                  "engine and has no single Cache; construct the "
                  "runner with SweepEngine::DirectOnly (or set "
                  "OCCSIM_SHARD=0) to keep one",
                  i, configs_[i].shortName().c_str());
    occsim_assert(routes_[i].engine != kRouteFused,
                  "config %zu (%s) rides a fused group pass and has "
                  "no single Cache; construct the runner with "
                  "SweepEngine::DirectOnly (or allow_sharding = "
                  "false) to keep one",
                  i, configs_[i].shortName().c_str());
    occsim_assert(routes_[i].engine != kRouteSplit,
                  "config %zu (%s) is a split I/D pair with no single "
                  "Cache",
                  i, configs_[i].shortName().c_str());
    occsim_assert(routes_[i].engine == kRouteDirect,
                  "config %zu (%s) is served by the single-pass "
                  "engine and has no Cache; construct the runner "
                  "with SweepEngine::DirectOnly to keep one",
                  i, configs_[i].shortName().c_str());
    if (batch_ != nullptr)
        return batch_->cache(routes_[i].slot);
    return *caches_[routes_[i].slot];
}

Cache &
ParallelSweepRunner::cache(std::size_t i)
{
    return const_cast<Cache &>(
        static_cast<const ParallelSweepRunner *>(this)->cache(i));
}

std::uint64_t
ParallelSweepRunner::run(const std::shared_ptr<const VectorTrace> &trace,
                         std::uint64_t max_refs)
{
    occsim_assert(trace != nullptr, "null trace");
    const std::vector<MemRef> &refs = trace->refs();
    const std::uint64_t limit =
        max_refs == 0
            ? refs.size()
            : std::min<std::uint64_t>(max_refs, refs.size());

    // First run: decide which direct configs go to the set-sharded
    // engine (depends on the pool width and the trace length).
    finalizeRoutes(poolOrGlobal(pool_).size(), limit);

    // Decode the trace once for the batched/sharded/fused engines
    // (memoized across runners sharing the trace).
    std::shared_ptr<const PackedTrace> packed;
    if (batch_ != nullptr || !shards_.empty() || !fused_.empty())
        packed = packedTraceShared(trace);

    // Partition the packed trace for every sharded config (memoized
    // per distinct (blockBits, shardBits), so configs agreeing on the
    // block size share one partition).
    std::vector<std::shared_ptr<const ShardedPackedTrace>> shard_traces;
    std::vector<std::pair<std::size_t, std::uint32_t>> shard_tasks;
    shard_traces.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
        shard_traces.push_back(shardedTraceShared(
            packed, shards_[k]->blockBits(), shards_[k]->shardBits(),
            limit));
        for (std::uint32_t s = 0; s < shards_[k]->numShards(); ++s)
            shard_tasks.emplace_back(k, s);
    }

    // Fused groups: one task per group (unsharded — driven straight
    // off the packed records, no partition copy) or per (group,
    // shard). An unsharded group's task is marked shard == numShards.
    std::vector<std::shared_ptr<const ShardedPackedTrace>> fused_traces(
        fused_.size());
    std::vector<std::pair<std::size_t, std::uint32_t>> fused_tasks;
    for (std::size_t g = 0; g < fused_.size(); ++g) {
        if (fused_[g]->numShards() == 1) {
            fused_tasks.emplace_back(g, 1u);
            continue;
        }
        fused_traces[g] = shardedTraceShared(
            packed, fused_[g]->blockBits(), fused_[g]->shardBits(),
            limit);
        for (std::uint32_t s = 0; s < fused_[g]->numShards(); ++s)
            fused_tasks.emplace_back(g, s);
    }

    // One task per direct cache (DirectOnly) or per batch tile
    // (Auto/CrossCheck), plus one per (sharded config, shard) and one
    // per (engine, level): the worker that claims a task drains the
    // full trace (or its shard of it) into it. Caches, tiles, shards,
    // and engine levels are touched by exactly one worker each, the
    // trace by all of them — read-only.
    std::vector<std::pair<std::size_t, std::size_t>> level_tasks;
    for (std::size_t e = 0; e < engines_.size(); ++e) {
        for (std::size_t l = 0; l < engines_[e]->numLevels(); ++l)
            level_tasks.emplace_back(e, l);
    }

    const std::size_t batch_tasks =
        batch_ != nullptr ? batch_->numTiles() : caches_.size();
    const std::size_t sharded_tasks = batch_tasks + shard_tasks.size();
    const std::size_t fused_end = sharded_tasks + fused_tasks.size();
    const std::size_t routed_tasks = fused_end + level_tasks.size();
    const std::size_t split_end = routed_tasks + splits_.size();
    poolOrGlobal(pool_).parallelFor(
        split_end + shadowCaches_.size(), [&](std::size_t task) {
            if (task < batch_tasks) {
                if (batch_ != nullptr) {
                    batch_->runTile(task, *packed, max_refs);
                    return;
                }
                OCCSIM_TELEM_STAGE("engine.direct");
                Cache &cache = *caches_[task];
                for (std::uint64_t r = 0; r < limit; ++r)
                    cache.access(refs[r]);
                cache.finalizeResidencies();
                OCCSIM_TELEM_COUNT("engine.direct.refs", limit);
                OCCSIM_TELEM_COUNT("engine.direct.bytes",
                                   limit * sizeof(MemRef));
            } else if (task < sharded_tasks) {
                const auto [k, s] = shard_tasks[task - batch_tasks];
                shards_[k]->runShard(s, *shard_traces[k]);
            } else if (task < fused_end) {
                const auto [g, s] = fused_tasks[task - sharded_tasks];
                if (s == fused_[g]->numShards())
                    fused_[g]->run(packed->data(), limit);
                else
                    fused_[g]->runShard(s, *fused_traces[g]);
            } else if (task < routed_tasks) {
                const auto [e, l] = level_tasks[task - fused_end];
                engines_[e]->runLevel(l, *trace, max_refs);
            } else if (task < split_end) {
                OCCSIM_TELEM_STAGE("engine.direct");
                SplitCache &pair = *splits_[task - routed_tasks];
                for (std::uint64_t r = 0; r < limit; ++r)
                    pair.access(refs[r]);
                pair.finalizeResidencies();
                OCCSIM_TELEM_COUNT("engine.direct.refs", limit);
                OCCSIM_TELEM_COUNT("engine.direct.bytes",
                                   limit * sizeof(MemRef));
            } else {
                OCCSIM_TELEM_STAGE("engine.shadow");
                Cache &cache = *shadowCaches_[task - split_end];
                for (std::uint64_t r = 0; r < limit; ++r)
                    cache.access(refs[r]);
                cache.finalizeResidencies();
                OCCSIM_TELEM_COUNT("engine.shadow.refs", limit);
                OCCSIM_TELEM_COUNT("engine.shadow.bytes",
                                   limit * sizeof(MemRef));
            }
        });

    // CrossCheck: the optimized engines must reproduce every shadow's
    // summary bit for bit, on this very trace.
    for (std::size_t s = 0; s < shadowIndex_.size(); ++s) {
        const std::size_t i = shadowIndex_[s];
        const Route &route = routes_[i];
        SweepResult fast;
        const char *engine_name = nullptr;
        if (route.engine >= 0) {
            fast = engines_[static_cast<std::size_t>(route.engine)]
                       ->results()[route.slot];
            engine_name = "single-pass";
        } else if (route.engine == kRouteShard) {
            fast = shards_[route.slot]->result();
            engine_name = "set-sharded";
        } else if (route.engine == kRouteFused) {
            const auto [g, k] = fusedSlots_[route.slot];
            fast = fused_[g]->result(k);
            engine_name = "fused";
        } else {
            fast = summarizeCache(batch_->cache(route.slot));
            engine_name = "batched";
        }
        const SweepResult want = summarizeCache(*shadowCaches_[s]);
        if (!sameSweepResult(fast, want)) {
            fatal("cross-check mismatch: %s engine disagrees "
                  "with direct simulation for config %s on trace %s",
                  engine_name, configs_[i].fullName().c_str(),
                  trace->name().c_str());
        }
    }
    if (!shadowIndex_.empty())
        OCCSIM_TELEM_COUNT("cross_check.samples", shadowIndex_.size());
    return limit;
}

std::vector<SweepResult>
ParallelSweepRunner::results() const
{
    std::vector<SweepResult> out(configs_.size());
    if (batch_ != nullptr) {
        const auto batch_results = batch_->results();
        for (std::size_t j = 0; j < batch_results.size(); ++j)
            out[batchIndex_[j]] = batch_results[j];
    } else {
        for (std::size_t j = 0; j < caches_.size(); ++j)
            out[batchIndex_[j]] = summarizeCache(*caches_[j]);
    }
    for (std::size_t k = 0; k < shards_.size(); ++k)
        out[shardIndex_[k]] = shards_[k]->result();
    for (std::size_t k = 0; k < splits_.size(); ++k) {
        out[splitIndex_[k]] =
            summarizeSplit(configs_[splitIndex_[k]], *splits_[k]);
    }
    for (std::size_t g = 0; g < fused_.size(); ++g) {
        const auto group_results = fused_[g]->results();
        for (std::size_t k = 0; k < group_results.size(); ++k)
            out[fusedIndex_[g][k]] = group_results[k];
    }
    for (std::size_t e = 0; e < engines_.size(); ++e) {
        const auto engine_results = engines_[e]->results();
        for (std::size_t k = 0; k < engine_results.size(); ++k)
            out[engineIndex_[e][k]] = engine_results[k];
    }
    return out;
}

} // namespace occsim
