#include "multi/parallel_sweep.hh"

#include <algorithm>
#include <functional>

#include "util/logging.hh"

namespace occsim {

namespace {

ThreadPool &
poolOrGlobal(ThreadPool *pool)
{
    return pool != nullptr ? *pool : globalThreadPool();
}

/**
 * Partition config indices for the Auto engine policy: eligible
 * configs grouped by block size (first-appearance order, so the
 * partition is deterministic), the rest listed for direct simulation.
 */
struct ConfigPartition
{
    std::vector<std::size_t> direct;
    std::vector<std::uint32_t> groupBlockSize;
    std::vector<std::vector<std::size_t>> groups;
};

ConfigPartition
partitionConfigs(const std::vector<CacheConfig> &configs,
                 SweepEngine engine)
{
    ConfigPartition part;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (engine == SweepEngine::DirectOnly ||
            !singlePassEligible(configs[i])) {
            part.direct.push_back(i);
            continue;
        }
        const std::uint32_t block = configs[i].blockSize;
        std::size_t g = part.groups.size();
        for (std::size_t k = 0; k < part.groupBlockSize.size(); ++k) {
            if (part.groupBlockSize[k] == block) {
                g = k;
                break;
            }
        }
        if (g == part.groups.size()) {
            part.groupBlockSize.push_back(block);
            part.groups.emplace_back();
        }
        part.groups[g].push_back(i);
    }
    return part;
}

std::vector<CacheConfig>
selectConfigs(const std::vector<CacheConfig> &configs,
              const std::vector<std::size_t> &indices)
{
    std::vector<CacheConfig> out;
    out.reserve(indices.size());
    for (const std::size_t i : indices)
        out.push_back(configs[i]);
    return out;
}

/** Bitwise SweepResult equality (the fast path's contract). */
bool
sameSweepResult(const SweepResult &a, const SweepResult &b)
{
    return a.grossBytes == b.grossBytes &&
           a.missRatio == b.missRatio &&
           a.warmMissRatio == b.warmMissRatio &&
           a.trafficRatio == b.trafficRatio &&
           a.warmTrafficRatio == b.warmTrafficRatio &&
           a.nibbleTrafficRatio == b.nibbleTrafficRatio &&
           a.warmNibbleTrafficRatio == b.warmNibbleTrafficRatio;
}

} // namespace

ParallelSweepRunner::ParallelSweepRunner(
    const std::vector<CacheConfig> &configs, ThreadPool *pool,
    SweepEngine engine)
    : pool_(pool), configs_(configs), routes_(configs.size())
{
    occsim_assert(!configs_.empty(), "sweep needs at least one config");

    const ConfigPartition part = partitionConfigs(configs_, engine);

    directIndex_ = part.direct;
    for (std::size_t j = 0; j < directIndex_.size(); ++j) {
        routes_[directIndex_[j]].engine = -1;
        routes_[directIndex_[j]].slot = static_cast<std::uint32_t>(j);
    }
    if (engine == SweepEngine::DirectOnly) {
        caches_.reserve(directIndex_.size());
        for (const std::size_t i : directIndex_)
            caches_.push_back(std::make_unique<Cache>(configs_[i]));
    } else if (!directIndex_.empty()) {
        batch_ = std::make_unique<BatchReplay>(
            selectConfigs(configs_, directIndex_));
    }

    engines_.reserve(part.groups.size());
    engineIndex_ = part.groups;
    for (std::size_t g = 0; g < part.groups.size(); ++g) {
        for (std::size_t k = 0; k < part.groups[g].size(); ++k) {
            const std::size_t i = part.groups[g][k];
            routes_[i].engine = static_cast<std::int32_t>(g);
            routes_[i].slot = static_cast<std::uint32_t>(k);
        }
        engines_.push_back(std::make_unique<SinglePassEngine>(
            selectConfigs(configs_, part.groups[g])));
    }

    if (engine == SweepEngine::CrossCheck) {
        // Every config is on an optimized engine (single-pass or
        // batched); shadow every 4th one (at least one) on the direct
        // engine and have run() verify the summaries bitwise.
        const std::size_t stride =
            std::max<std::size_t>(1, configs_.size() / 4);
        for (std::size_t i = 0; i < configs_.size(); i += stride) {
            shadowIndex_.push_back(i);
            shadowCaches_.push_back(
                std::make_unique<Cache>(configs_[i]));
        }
    }
}

bool
ParallelSweepRunner::fastPathed(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    return routes_[i].engine >= 0;
}

std::size_t
ParallelSweepRunner::fastPathCount() const
{
    return configs_.size() - directIndex_.size();
}

std::size_t
ParallelSweepRunner::batchedCount() const
{
    return batch_ != nullptr ? batch_->size() : 0;
}

const Cache &
ParallelSweepRunner::cache(std::size_t i) const
{
    occsim_assert(i < routes_.size(), "config index out of range");
    occsim_assert(routes_[i].engine < 0,
                  "config %zu (%s) is served by the single-pass "
                  "engine and has no Cache; construct the runner "
                  "with SweepEngine::DirectOnly to keep one",
                  i, configs_[i].shortName().c_str());
    if (batch_ != nullptr)
        return batch_->cache(routes_[i].slot);
    return *caches_[routes_[i].slot];
}

Cache &
ParallelSweepRunner::cache(std::size_t i)
{
    return const_cast<Cache &>(
        static_cast<const ParallelSweepRunner *>(this)->cache(i));
}

std::uint64_t
ParallelSweepRunner::run(const std::shared_ptr<const VectorTrace> &trace,
                         std::uint64_t max_refs)
{
    occsim_assert(trace != nullptr, "null trace");
    const std::vector<MemRef> &refs = trace->refs();
    const std::uint64_t limit =
        max_refs == 0
            ? refs.size()
            : std::min<std::uint64_t>(max_refs, refs.size());

    // Decode the trace once for the batched engine (memoized across
    // runners sharing the trace).
    std::shared_ptr<const PackedTrace> packed;
    if (batch_ != nullptr)
        packed = packedTraceShared(trace);

    // One task per direct cache (DirectOnly) or per batch tile
    // (Auto/CrossCheck), plus one per (engine, level): the worker
    // that claims a task drains the full trace into it. Caches,
    // tiles, and engine levels are touched by exactly one worker
    // each, the trace by all of them — read-only.
    std::vector<std::pair<std::size_t, std::size_t>> level_tasks;
    for (std::size_t e = 0; e < engines_.size(); ++e) {
        for (std::size_t l = 0; l < engines_[e]->numLevels(); ++l)
            level_tasks.emplace_back(e, l);
    }

    const std::size_t batch_tasks =
        batch_ != nullptr ? batch_->numTiles() : caches_.size();
    const std::size_t routed_tasks = batch_tasks + level_tasks.size();
    poolOrGlobal(pool_).parallelFor(
        routed_tasks + shadowCaches_.size(), [&](std::size_t task) {
            if (task < batch_tasks) {
                if (batch_ != nullptr) {
                    batch_->runTile(task, *packed, max_refs);
                    return;
                }
                Cache &cache = *caches_[task];
                for (std::uint64_t r = 0; r < limit; ++r)
                    cache.access(refs[r]);
                cache.finalizeResidencies();
            } else if (task < routed_tasks) {
                const auto [e, l] = level_tasks[task - batch_tasks];
                engines_[e]->runLevel(l, *trace, max_refs);
            } else {
                Cache &cache = *shadowCaches_[task - routed_tasks];
                for (std::uint64_t r = 0; r < limit; ++r)
                    cache.access(refs[r]);
                cache.finalizeResidencies();
            }
        });

    // CrossCheck: the optimized engines must reproduce every shadow's
    // summary bit for bit, on this very trace.
    for (std::size_t s = 0; s < shadowIndex_.size(); ++s) {
        const std::size_t i = shadowIndex_[s];
        const Route &route = routes_[i];
        const SweepResult fast =
            route.engine >= 0
                ? engines_[static_cast<std::size_t>(route.engine)]
                      ->results()[route.slot]
                : summarizeCache(batch_->cache(route.slot));
        const SweepResult want = summarizeCache(*shadowCaches_[s]);
        if (!sameSweepResult(fast, want)) {
            fatal("cross-check mismatch: %s engine disagrees "
                  "with direct simulation for config %s on trace %s",
                  route.engine >= 0 ? "single-pass" : "batched",
                  configs_[i].fullName().c_str(),
                  trace->name().c_str());
        }
    }
    return limit;
}

std::vector<SweepResult>
ParallelSweepRunner::results() const
{
    std::vector<SweepResult> out(configs_.size());
    if (batch_ != nullptr) {
        const auto batch_results = batch_->results();
        for (std::size_t j = 0; j < batch_results.size(); ++j)
            out[directIndex_[j]] = batch_results[j];
    } else {
        for (std::size_t j = 0; j < caches_.size(); ++j)
            out[directIndex_[j]] = summarizeCache(*caches_[j]);
    }
    for (std::size_t e = 0; e < engines_.size(); ++e) {
        const auto engine_results = engines_[e]->results();
        for (std::size_t k = 0; k < engine_results.size(); ++k)
            out[engineIndex_[e][k]] = engine_results[k];
    }
    return out;
}

std::vector<std::vector<SweepResult>>
runSweeps(const std::vector<std::shared_ptr<const VectorTrace>> &traces,
          const std::vector<CacheConfig> &configs, ThreadPool *pool,
          SweepEngine engine)
{
    occsim_assert(!traces.empty(), "no traces to sweep");
    occsim_assert(!configs.empty(), "sweep needs at least one config");

    if (engine == SweepEngine::CrossCheck) {
        // Verification mode: one checked runner per trace (still
        // parallel within each trace). The flattened fast path below
        // has no per-config shadows, so it cannot cross-check.
        std::vector<std::vector<SweepResult>> out;
        out.reserve(traces.size());
        for (const auto &trace : traces) {
            ParallelSweepRunner runner(configs, pool, engine);
            runner.run(trace);
            out.push_back(runner.results());
        }
        return out;
    }

    std::vector<std::vector<SweepResult>> out(
        traces.size(), std::vector<SweepResult>(configs.size()));

    const ConfigPartition part = partitionConfigs(configs, engine);

    // Fast path: one single-pass engine per (trace, block-size
    // group), parallelized one task per (engine, set-count level).
    std::vector<std::vector<CacheConfig>> group_configs;
    group_configs.reserve(part.groups.size());
    for (const auto &group : part.groups)
        group_configs.push_back(selectConfigs(configs, group));

    const std::size_t num_groups = part.groups.size();
    std::vector<std::unique_ptr<SinglePassEngine>> engines(
        traces.size() * num_groups);
    for (std::size_t t = 0; t < traces.size(); ++t) {
        for (std::size_t g = 0; g < num_groups; ++g) {
            engines[t * num_groups + g] =
                std::make_unique<SinglePassEngine>(group_configs[g]);
        }
    }

    // Non-eligible configs: under Auto, one batched replay engine per
    // trace over the shared packed trace, parallelized per config
    // tile; under DirectOnly, one plain Cache task per (trace,
    // config) pair.
    const bool batched =
        engine != SweepEngine::DirectOnly && !part.direct.empty();
    std::vector<CacheConfig> direct_configs =
        selectConfigs(configs, part.direct);
    std::vector<std::unique_ptr<BatchReplay>> batches;
    std::vector<std::shared_ptr<const PackedTrace>> packed;
    if (batched) {
        batches.resize(traces.size());
        packed.reserve(traces.size());
        for (std::size_t t = 0; t < traces.size(); ++t) {
            batches[t] = std::make_unique<BatchReplay>(direct_configs);
            packed.push_back(packedTraceShared(traces[t]));
        }
    }

    // Flatten everything to one task list: every (trace, direct
    // config) pair or (trace, tile) pair, plus every (trace, group,
    // level) triple. Each task writes only its own caches/levels/
    // tiles, so scheduling order cannot affect the results.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(traces.size() *
                  (part.direct.size() + num_groups));
    for (std::size_t t = 0; t < traces.size(); ++t) {
        if (batched) {
            for (std::size_t tile = 0; tile < batches[t]->numTiles();
                 ++tile) {
                tasks.push_back([&batches, &packed, t, tile] {
                    batches[t]->runTile(tile, *packed[t]);
                });
            }
        } else {
            for (const std::size_t c : part.direct) {
                tasks.push_back([&, t, c] {
                    Cache cache(configs[c]);
                    for (const MemRef &ref : traces[t]->refs())
                        cache.access(ref);
                    cache.finalizeResidencies();
                    out[t][c] = summarizeCache(cache);
                });
            }
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            SinglePassEngine &eng = *engines[t * num_groups + g];
            for (std::size_t l = 0; l < eng.numLevels(); ++l) {
                tasks.push_back([&eng, &traces, t, l] {
                    eng.runLevel(l, *traces[t]);
                });
            }
        }
    }

    poolOrGlobal(pool).parallelFor(
        tasks.size(), [&](std::size_t i) { tasks[i](); });

    for (std::size_t t = 0; t < traces.size(); ++t) {
        if (batched) {
            const auto results = batches[t]->results();
            for (std::size_t k = 0; k < results.size(); ++k)
                out[t][part.direct[k]] = results[k];
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            const auto results =
                engines[t * num_groups + g]->results();
            for (std::size_t k = 0; k < results.size(); ++k)
                out[t][part.groups[g][k]] = results[k];
        }
    }
    return out;
}

} // namespace occsim
