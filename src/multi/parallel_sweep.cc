#include "multi/parallel_sweep.hh"

#include <algorithm>

#include "util/logging.hh"

namespace occsim {

namespace {

ThreadPool &
poolOrGlobal(ThreadPool *pool)
{
    return pool != nullptr ? *pool : globalThreadPool();
}

} // namespace

ParallelSweepRunner::ParallelSweepRunner(
    const std::vector<CacheConfig> &configs, ThreadPool *pool)
    : pool_(pool)
{
    occsim_assert(!configs.empty(), "sweep needs at least one config");
    caches_.reserve(configs.size());
    for (const CacheConfig &config : configs)
        caches_.push_back(std::make_unique<Cache>(config));
}

std::uint64_t
ParallelSweepRunner::run(const std::shared_ptr<const VectorTrace> &trace,
                         std::uint64_t max_refs)
{
    occsim_assert(trace != nullptr, "null trace");
    const std::vector<MemRef> &refs = trace->refs();
    const std::uint64_t limit =
        max_refs == 0
            ? refs.size()
            : std::min<std::uint64_t>(max_refs, refs.size());

    // Each index is one whole cache: the worker that claims it drains
    // the full trace into that cache, then the next unclaimed one.
    // Caches are touched by exactly one worker, the trace by all of
    // them — read-only.
    poolOrGlobal(pool_).parallelFor(
        caches_.size(), [&](std::size_t i) {
            Cache &cache = *caches_[i];
            for (std::uint64_t r = 0; r < limit; ++r)
                cache.access(refs[r]);
            cache.finalizeResidencies();
        });
    return limit;
}

std::vector<SweepResult>
ParallelSweepRunner::results() const
{
    std::vector<SweepResult> out;
    out.reserve(caches_.size());
    for (const auto &cache : caches_)
        out.push_back(summarizeCache(*cache));
    return out;
}

std::vector<std::vector<SweepResult>>
runSweeps(const std::vector<std::shared_ptr<const VectorTrace>> &traces,
          const std::vector<CacheConfig> &configs, ThreadPool *pool)
{
    occsim_assert(!traces.empty(), "no traces to sweep");
    occsim_assert(!configs.empty(), "sweep needs at least one config");

    std::vector<std::vector<SweepResult>> out(
        traces.size(), std::vector<SweepResult>(configs.size()));

    // Flatten to one task per (trace, config) pair for maximum
    // parallelism; every task writes only its own result slot. Task
    // order is trace-major, so a size-1 pool reproduces the
    // sequential engine's exact execution order.
    const std::size_t num_configs = configs.size();
    poolOrGlobal(pool).parallelFor(
        traces.size() * num_configs, [&](std::size_t task) {
            const std::size_t t = task / num_configs;
            const std::size_t c = task % num_configs;
            Cache cache(configs[c]);
            for (const MemRef &ref : traces[t]->refs())
                cache.access(ref);
            cache.finalizeResidencies();
            out[t][c] = summarizeCache(cache);
        });
    return out;
}

} // namespace occsim
