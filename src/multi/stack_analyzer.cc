#include "multi/stack_analyzer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace occsim {

namespace {

/**
 * Rebuild @p hits_up_to as prefix sums of @p hist (hits_up_to[c] =
 * sum of hist[1..c]) if @p stale, then clear the flag. Summation
 * order matches the historical per-query rescan, so every answer is
 * bit-identical to it.
 */
void
refreshPrefix(const std::vector<std::uint64_t> &hist,
              std::vector<std::uint64_t> &hits_up_to, bool &stale)
{
    if (!stale)
        return;
    hits_up_to.assign(hist.size(), 0);
    for (std::size_t d = 1; d < hist.size(); ++d)
        hits_up_to[d] = hits_up_to[d - 1] + hist[d];
    stale = false;
}

} // namespace

StackAnalyzer::StackAnalyzer(std::uint32_t block_size,
                             std::uint32_t max_depth)
    : blockBits_(floorLog2(block_size)), maxDepth_(max_depth),
      tracker_(1), distanceHist_(max_depth + 1, 0)
{
    occsim_assert(isPowerOfTwo(block_size),
                  "block size must be a power of two");
    occsim_assert(max_depth > 0, "max depth must be positive");
}

void
StackAnalyzer::process(Addr addr)
{
    ++refs_;
    prefixStale_ = true;
    const Addr block = addr >> blockBits_;
    const std::uint64_t distance = tracker_.touch(block);
    if (distance == SetLruTracker::kFirstTouch) {
        ++distinct_;
    } else if (distance <= maxDepth_) {
        ++distanceHist_[distance];
    } else {
        // Beyond-depth reuse: misses in every capacity we can answer
        // for, exactly like a first touch (this is what the old
        // bounded stack reported for it), but worth counting on its
        // own as well.
        ++distinct_;
        ++overflow_;
    }
}

void
StackAnalyzer::processTrace(const VectorTrace &trace)
{
    for (const MemRef &ref : trace.refs())
        process(ref.addr);
}

double
StackAnalyzer::missRatioForCapacity(std::uint32_t capacity_blocks) const
{
    occsim_assert(capacity_blocks > 0, "capacity must be positive");
    occsim_assert(capacity_blocks <= maxDepth_,
                  "capacity %u exceeds analyzer depth %u",
                  capacity_blocks, maxDepth_);
    if (refs_ == 0)
        return 0.0;
    refreshPrefix(distanceHist_, hitsUpTo_, prefixStale_);
    const std::uint32_t limit =
        std::min<std::uint32_t>(capacity_blocks,
                                static_cast<std::uint32_t>(
                                    distanceHist_.size() - 1));
    return 1.0 - static_cast<double>(hitsUpTo_[limit]) /
                     static_cast<double>(refs_);
}

SetStackAnalyzer::SetStackAnalyzer(std::uint32_t block_size,
                                   std::uint32_t num_sets,
                                   std::uint32_t max_depth)
    : blockBits_(floorLog2(block_size)), maxDepth_(max_depth),
      tracker_(num_sets), distanceHist_(max_depth + 1, 0)
{
    occsim_assert(isPowerOfTwo(block_size),
                  "block size must be a power of two");
    occsim_assert(isPowerOfTwo(num_sets),
                  "set count must be a power of two");
}

void
SetStackAnalyzer::process(Addr addr)
{
    ++refs_;
    prefixStale_ = true;
    const Addr block = addr >> blockBits_;
    const std::uint64_t distance = tracker_.touch(block);
    if (distance == SetLruTracker::kFirstTouch ||
        distance > maxDepth_) {
        ++missesBeyondDepth_;
    } else {
        ++distanceHist_[distance];
    }
}

void
SetStackAnalyzer::processTrace(const VectorTrace &trace)
{
    for (const MemRef &ref : trace.refs())
        process(ref.addr);
}

double
SetStackAnalyzer::missRatioForAssoc(std::uint32_t assoc) const
{
    occsim_assert(assoc > 0 && assoc <= maxDepth_,
                  "associativity %u outside analyzer depth", assoc);
    if (refs_ == 0)
        return 0.0;
    refreshPrefix(distanceHist_, hitsUpTo_, prefixStale_);
    return 1.0 - static_cast<double>(hitsUpTo_[assoc]) /
                     static_cast<double>(refs_);
}

} // namespace occsim
