#include "multi/stack_analyzer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace occsim {

namespace {

/**
 * Core stack update shared by both analyzers: find @p block in
 * @p stack (most recent at the back), remove it, push it to the back,
 * and return its 1-based distance from the top, or 0 if absent.
 */
std::uint32_t
touchStack(std::vector<Addr> &stack, Addr block, std::uint32_t max_depth)
{
    // Search from the top (back) since locality makes small distances
    // overwhelmingly common.
    for (std::size_t i = stack.size(); i-- > 0;) {
        if (stack[i] == block) {
            const std::uint32_t distance =
                static_cast<std::uint32_t>(stack.size() - i);
            stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
            stack.push_back(block);
            return distance;
        }
    }
    stack.push_back(block);
    if (stack.size() > max_depth)
        stack.erase(stack.begin());
    return 0;
}

} // namespace

StackAnalyzer::StackAnalyzer(std::uint32_t block_size,
                             std::uint32_t max_depth)
    : blockBits_(floorLog2(block_size)), maxDepth_(max_depth),
      distanceHist_(max_depth + 1, 0)
{
    occsim_assert(isPowerOfTwo(block_size),
                  "block size must be a power of two");
    occsim_assert(max_depth > 0, "max depth must be positive");
    stack_.reserve(max_depth + 1);
}

void
StackAnalyzer::process(Addr addr)
{
    ++refs_;
    const Addr block = addr >> blockBits_;
    const std::uint32_t distance = touchStack(stack_, block, maxDepth_);
    if (distance == 0) {
        // Never seen within the retained depth. Distinguishing true
        // compulsory misses from beyond-depth reuse is unnecessary:
        // both miss in every capacity we can answer for.
        ++distinct_;
    } else if (distance <= maxDepth_) {
        ++distanceHist_[distance];
    } else {
        ++overflow_;
    }
}

void
StackAnalyzer::processTrace(const VectorTrace &trace)
{
    for (const MemRef &ref : trace.refs())
        process(ref.addr);
}

double
StackAnalyzer::missRatioForCapacity(std::uint32_t capacity_blocks) const
{
    occsim_assert(capacity_blocks > 0, "capacity must be positive");
    occsim_assert(capacity_blocks <= maxDepth_,
                  "capacity %u exceeds analyzer depth %u",
                  capacity_blocks, maxDepth_);
    if (refs_ == 0)
        return 0.0;
    std::uint64_t hits = 0;
    const std::uint32_t limit =
        std::min<std::uint32_t>(capacity_blocks,
                                static_cast<std::uint32_t>(
                                    distanceHist_.size() - 1));
    for (std::uint32_t d = 1; d <= limit; ++d)
        hits += distanceHist_[d];
    return 1.0 - static_cast<double>(hits) / static_cast<double>(refs_);
}

SetStackAnalyzer::SetStackAnalyzer(std::uint32_t block_size,
                                   std::uint32_t num_sets,
                                   std::uint32_t max_depth)
    : blockBits_(floorLog2(block_size)), numSets_(num_sets),
      maxDepth_(max_depth), stacks_(num_sets),
      distanceHist_(max_depth + 1, 0)
{
    occsim_assert(isPowerOfTwo(block_size),
                  "block size must be a power of two");
    occsim_assert(isPowerOfTwo(num_sets),
                  "set count must be a power of two");
}

void
SetStackAnalyzer::process(Addr addr)
{
    ++refs_;
    const Addr block = addr >> blockBits_;
    const std::uint32_t set = block & (numSets_ - 1);
    const std::uint32_t distance =
        touchStack(stacks_[set], block, maxDepth_);
    if (distance == 0 || distance > maxDepth_)
        ++missesBeyondDepth_;
    else
        ++distanceHist_[distance];
}

void
SetStackAnalyzer::processTrace(const VectorTrace &trace)
{
    for (const MemRef &ref : trace.refs())
        process(ref.addr);
}

double
SetStackAnalyzer::missRatioForAssoc(std::uint32_t assoc) const
{
    occsim_assert(assoc > 0 && assoc <= maxDepth_,
                  "associativity %u outside analyzer depth", assoc);
    if (refs_ == 0)
        return 0.0;
    std::uint64_t hits = 0;
    for (std::uint32_t d = 1; d <= assoc; ++d)
        hits += distanceHist_[d];
    return 1.0 - static_cast<double>(hits) / static_cast<double>(refs_);
}

} // namespace occsim
