#include "multi/sweep_api.hh"

#include <algorithm>
#include <chrono>
#include <functional>

#include "coherence/coherent_system.hh"
#include "multi/sweep_detail.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

namespace {

using sweep_detail::partitionConfigs;
using sweep_detail::poolOrGlobal;
using sweep_detail::selectConfigs;

/** Per-trace reference limit under @p max_refs (0 = whole trace). */
std::uint64_t
traceLimit(const VectorTrace &trace, std::uint64_t max_refs)
{
    const std::uint64_t size = trace.refs().size();
    return max_refs == 0 ? size : std::min(max_refs, size);
}

/** Set-sharded engine activity of one sweep, for the manifest. */
struct ShardInfo
{
    ShardTelemetry telem;
    /** shardedConfigs[c]: config c was sharded on >= 1 trace. */
    std::vector<bool> shardedConfigs;
};

/** Fused group engine activity of one sweep, for the manifest. */
struct FusedInfo
{
    std::size_t fusedRuns = 0;  ///< (trace, group) passes run
    /** fusedConfigs[c]: config c rode a fused pass on >= 1 trace. */
    std::vector<bool> fusedConfigs;
};

/**
 * Verification / probe path: one ParallelSweepRunner per trace (still
 * parallel within each trace), so per-config shadows exist
 * (CrossCheck) and finished Caches can be inspected (probe). A probe
 * pins its runners off the set-sharded engine — probes read
 * runner.cache(i), which sharded configs cannot serve.
 */
std::uint64_t
runPerTraceRunners(const SweepRequest &request, SweepReport &report,
                   std::size_t &cross_check_samples,
                   ShardInfo &shard_info, FusedInfo &fused_info)
{
    std::uint64_t refs = 0;
    report.perTrace.reserve(request.traces.size());
    for (std::size_t t = 0; t < request.traces.size(); ++t) {
        ParallelSweepRunner runner(request.configs, request.pool,
                                   request.engine,
                                   /*allow_sharding=*/!request.probe);
        refs += runner.run(request.traces[t], request.maxRefs);
        cross_check_samples += runner.crossCheckCount();
        shard_info.telem.accumulate(runner.shardTelemetry());
        fused_info.fusedRuns += runner.fusedGroupCount();
        for (std::size_t c = 0; c < request.configs.size(); ++c) {
            if (runner.sharded(c))
                shard_info.shardedConfigs[c] = true;
            if (runner.fused(c))
                fused_info.fusedConfigs[c] = true;
        }
        if (request.probe)
            request.probe(t, runner);
        report.perTrace.push_back(runner.results());
    }
    return refs;
}

/**
 * Grid path: the whole (trace, config) grid flattened to one task
 * list over the pool — batch tiles plus single-pass levels plus
 * direct per-config tasks. Each task writes only its own caches/
 * levels/tiles, so scheduling order cannot affect the results.
 */
std::uint64_t
runFlattenedGrid(const SweepRequest &request, SweepReport &report,
                 ShardInfo &shard_info, FusedInfo &fused_info)
{
    const auto &traces = request.traces;
    const auto &configs = request.configs;
    const std::uint64_t max_refs = request.maxRefs;

    report.perTrace.assign(traces.size(),
                           std::vector<SweepResult>(configs.size()));
    auto &out = report.perTrace;

    const sweep_detail::ConfigPartition part =
        partitionConfigs(configs, request.engine);

    // Split I/D configs always get a dedicated SplitCache pair task:
    // the pair routes by reference kind, which no batched kernel
    // models.
    std::vector<std::size_t> split_list;
    std::vector<std::size_t> direct;
    for (const std::size_t c : part.direct) {
        if (configs[c].partition == CachePartition::SplitID)
            split_list.push_back(c);
        else
            direct.push_back(c);
    }

    // Fast path: one single-pass engine per (trace, block-size
    // group), parallelized one task per (engine, set-count level).
    std::vector<std::vector<CacheConfig>> group_configs;
    group_configs.reserve(part.groups.size());
    for (const auto &group : part.groups)
        group_configs.push_back(selectConfigs(configs, group));

    const std::size_t num_groups = part.groups.size();
    std::vector<std::unique_ptr<SinglePassEngine>> engines(
        traces.size() * num_groups);
    for (std::size_t t = 0; t < traces.size(); ++t) {
        for (std::size_t g = 0; g < num_groups; ++g) {
            engines[t * num_groups + g] =
                std::make_unique<SinglePassEngine>(group_configs[g]);
        }
    }

    // Non-eligible configs: under Auto, fusable groups of two or more
    // FusedKey-sharing configs ride one fused group pass per trace,
    // the rest go to one batched replay engine per trace over the
    // shared packed trace, parallelized per config tile — except the
    // (trace, config) runs shouldShard routes to the set-sharded
    // engine (fused groups shard as a unit), each split into one task
    // per shard; under DirectOnly, one plain Cache task per (trace,
    // config) pair.
    const bool batched = request.engine != SweepEngine::DirectOnly &&
                         !direct.empty();

    // The grouping is pure config geometry, so it is shared by every
    // trace; shard decisions are per trace (lengths differ).
    std::vector<std::vector<std::size_t>> fused_groups;
    std::vector<std::size_t> residual = direct;
    if (batched) {
        residual.clear();
        std::vector<bool> in_group(configs.size(), false);
        for (auto &group : fusedGroups(configs, direct)) {
            if (group.size() < 2)
                continue;
            for (const std::size_t c : group)
                in_group[c] = true;
            fused_groups.push_back(std::move(group));
        }
        for (const std::size_t c : direct) {
            if (!in_group[c])
                residual.push_back(c);
        }
    }
    std::vector<std::vector<std::unique_ptr<FusedReplay>>>
        fused_engines(traces.size());

    std::vector<std::unique_ptr<BatchReplay>> batches;
    std::vector<std::shared_ptr<const PackedTrace>> packed;
    // Per trace: which residual configs stay batched, which shard.
    std::vector<std::vector<std::size_t>> batch_index(traces.size());
    std::vector<std::vector<std::size_t>> shard_index(traces.size());
    std::vector<std::vector<std::unique_ptr<ShardReplay>>>
        shard_engines(traces.size());
    if (batched) {
        const unsigned threads =
            static_cast<unsigned>(poolOrGlobal(request.pool).size());
        const ShardMode shard_mode = shardModeFromEnv();
        // Task inventory if nothing shards: batch tiles, fused group
        // passes, plus single-pass levels, over every trace.
        std::size_t levels_per_trace = 0;
        for (std::size_t g = 0; g < num_groups; ++g)
            levels_per_trace += engines[g]->numLevels();
        const std::size_t tiles_per_trace =
            (residual.size() + BatchReplay::kDefaultTileConfigs - 1) /
            BatchReplay::kDefaultTileConfigs;
        const std::size_t competing =
            traces.size() * (tiles_per_trace + fused_groups.size() +
                             levels_per_trace);

        batches.resize(traces.size());
        packed.reserve(traces.size());
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const std::uint64_t limit =
                traceLimit(*traces[t], max_refs);
            for (const auto &group : fused_groups) {
                const CacheConfig &rep = configs[group.front()];
                const bool shard =
                    shouldShard(shard_mode, rep, threads, limit,
                                competing);
                fused_engines[t].push_back(
                    std::make_unique<FusedReplay>(
                        selectConfigs(configs, group),
                        shard ? planShardCount(rep, threads) : 1));
            }
            for (const std::size_t c : residual) {
                if (shouldShard(shard_mode, configs[c], threads,
                                limit, competing)) {
                    shard_index[t].push_back(c);
                    shard_engines[t].push_back(
                        std::make_unique<ShardReplay>(
                            configs[c],
                            planShardCount(configs[c], threads)));
                } else {
                    batch_index[t].push_back(c);
                }
            }
            if (!batch_index[t].empty()) {
                batches[t] = std::make_unique<BatchReplay>(
                    selectConfigs(configs, batch_index[t]));
            }
            packed.push_back(packedTraceShared(traces[t]));
        }
    }

    // Flatten everything to one task list: every (trace, direct
    // config) pair or (trace, tile) pair, plus every (trace, group,
    // level) triple.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(traces.size() *
                  (part.direct.size() + num_groups));
    for (std::size_t t = 0; t < traces.size(); ++t) {
        if (batched) {
            if (batches[t] != nullptr) {
                for (std::size_t tile = 0;
                     tile < batches[t]->numTiles(); ++tile) {
                    tasks.push_back(
                        [&batches, &packed, max_refs, t, tile] {
                            batches[t]->runTile(tile, *packed[t],
                                                max_refs);
                        });
                }
            }
            const std::uint64_t limit =
                traceLimit(*traces[t], max_refs);
            for (auto &engine : fused_engines[t]) {
                FusedReplay *eng = engine.get();
                if (eng->numShards() == 1) {
                    // Unsharded: drive the group pass straight off
                    // the packed records, no partition copy.
                    const PackedTrace *ptrace = packed[t].get();
                    tasks.push_back([eng, ptrace, limit] {
                        eng->run(ptrace->data(), limit);
                    });
                    continue;
                }
                auto strace = shardedTraceShared(
                    packed[t], eng->blockBits(), eng->shardBits(),
                    limit);
                for (std::uint32_t s = 0; s < eng->numShards(); ++s) {
                    tasks.push_back([eng, strace, s] {
                        eng->runShard(s, *strace);
                    });
                }
            }
            for (auto &engine : shard_engines[t]) {
                // Partition the packed trace for this engine's
                // (blockBits, shardBits); memoized, so configs
                // agreeing on the block size share one partition.
                auto strace = shardedTraceShared(
                    packed[t], engine->blockBits(),
                    engine->shardBits(), limit);
                ShardReplay *eng = engine.get();
                for (std::uint32_t s = 0; s < eng->numShards(); ++s) {
                    tasks.push_back([eng, strace, s] {
                        eng->runShard(s, *strace);
                    });
                }
            }
        } else {
            for (const std::size_t c : direct) {
                tasks.push_back([&, t, c] {
                    OCCSIM_TELEM_STAGE("engine.direct");
                    const std::vector<MemRef> &refs =
                        traces[t]->refs();
                    const std::uint64_t limit =
                        traceLimit(*traces[t], max_refs);
                    Cache cache(configs[c]);
                    for (std::uint64_t r = 0; r < limit; ++r)
                        cache.access(refs[r]);
                    cache.finalizeResidencies();
                    out[t][c] = summarizeCache(cache);
                    OCCSIM_TELEM_COUNT("engine.direct.refs", limit);
                    OCCSIM_TELEM_COUNT("engine.direct.bytes",
                                       limit * sizeof(MemRef));
                });
            }
        }
        for (const std::size_t c : split_list) {
            tasks.push_back([&, t, c] {
                OCCSIM_TELEM_STAGE("engine.direct");
                const std::vector<MemRef> &refs = traces[t]->refs();
                const std::uint64_t limit =
                    traceLimit(*traces[t], max_refs);
                SplitCache pair = makeEvenSplit(configs[c]);
                for (std::uint64_t r = 0; r < limit; ++r)
                    pair.access(refs[r]);
                pair.finalizeResidencies();
                out[t][c] = summarizeSplit(configs[c], pair);
                OCCSIM_TELEM_COUNT("engine.direct.refs", limit);
                OCCSIM_TELEM_COUNT("engine.direct.bytes",
                                   limit * sizeof(MemRef));
            });
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            SinglePassEngine &eng = *engines[t * num_groups + g];
            for (std::size_t l = 0; l < eng.numLevels(); ++l) {
                tasks.push_back([&eng, &traces, max_refs, t, l] {
                    eng.runLevel(l, *traces[t], max_refs);
                });
            }
        }
    }

    poolOrGlobal(request.pool)
        .parallelFor(tasks.size(),
                     [&](std::size_t i) { tasks[i](); });

    std::uint64_t refs = 0;
    for (std::size_t t = 0; t < traces.size(); ++t) {
        refs += traceLimit(*traces[t], max_refs);
        if (batched) {
            if (batches[t] != nullptr) {
                const auto results = batches[t]->results();
                for (std::size_t k = 0; k < results.size(); ++k)
                    out[t][batch_index[t][k]] = results[k];
            }
            for (std::size_t k = 0; k < shard_engines[t].size();
                 ++k) {
                out[t][shard_index[t][k]] =
                    shard_engines[t][k]->result();
                shard_info.telem.accumulate(*shard_engines[t][k]);
                shard_info.shardedConfigs[shard_index[t][k]] = true;
            }
            for (std::size_t g = 0; g < fused_engines[t].size();
                 ++g) {
                const FusedReplay &eng = *fused_engines[t][g];
                const auto results = eng.results();
                for (std::size_t k = 0; k < results.size(); ++k) {
                    out[t][fused_groups[g][k]] = results[k];
                    fused_info.fusedConfigs[fused_groups[g][k]] =
                        true;
                }
                ++fused_info.fusedRuns;
                if (eng.numShards() > 1)
                    shard_info.telem.accumulate(eng);
            }
        }
        for (std::size_t g = 0; g < num_groups; ++g) {
            const auto results =
                engines[t * num_groups + g]->results();
            for (std::size_t k = 0; k < results.size(); ++k)
                out[t][part.groups[g][k]] = results[k];
        }
    }
    return refs;
}

/**
 * Packed path: replay already packed traces (typically corpus files
 * mapped read-only) with no MemRef stream in sight. Every config goes
 * through the batch engine's config tiles — or the set-sharded engine
 * where shouldShard routes it — so the task shapes and results are
 * exactly those the flattened grid produces for its non-single-pass
 * configs.
 */
std::uint64_t
runPackedGrid(const SweepRequest &request, SweepReport &report,
              ShardInfo &shard_info, FusedInfo &fused_info)
{
    const auto &traces = request.packedTraces;
    const auto &configs = request.configs;
    const std::uint64_t max_refs = request.maxRefs;

    report.perTrace.assign(traces.size(),
                           std::vector<SweepResult>(configs.size()));
    auto &out = report.perTrace;

    // Split I/D configs get dedicated SplitCache pair tasks over the
    // packed records; fusable groups next (shared by every trace —
    // the grouping is pure config geometry); the residual goes to
    // batch/shard.
    std::vector<std::size_t> split_list;
    std::vector<std::size_t> candidates;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (configs[c].partition == CachePartition::SplitID)
            split_list.push_back(c);
        else
            candidates.push_back(c);
    }
    std::vector<std::vector<std::size_t>> fused_groups;
    std::vector<bool> in_group(configs.size(), false);
    for (auto &group : fusedGroups(configs, candidates)) {
        if (group.size() < 2)
            continue;
        for (const std::size_t c : group)
            in_group[c] = true;
        fused_groups.push_back(std::move(group));
    }
    std::vector<std::size_t> residual;
    for (const std::size_t c : candidates) {
        if (!in_group[c])
            residual.push_back(c);
    }
    std::vector<std::vector<std::unique_ptr<FusedReplay>>>
        fused_engines(traces.size());

    const unsigned threads =
        static_cast<unsigned>(poolOrGlobal(request.pool).size());
    const ShardMode shard_mode = shardModeFromEnv();
    const std::size_t tiles_per_trace =
        (residual.size() + BatchReplay::kDefaultTileConfigs - 1) /
        BatchReplay::kDefaultTileConfigs;
    const std::size_t competing =
        traces.size() * (tiles_per_trace + fused_groups.size());

    std::vector<std::unique_ptr<BatchReplay>> batches(traces.size());
    std::vector<std::vector<std::size_t>> batch_index(traces.size());
    std::vector<std::vector<std::size_t>> shard_index(traces.size());
    std::vector<std::vector<std::unique_ptr<ShardReplay>>>
        shard_engines(traces.size());

    std::vector<std::function<void()>> tasks;
    for (std::size_t t = 0; t < traces.size(); ++t) {
        const std::uint64_t limit =
            max_refs == 0
                ? traces[t]->size()
                : std::min<std::uint64_t>(max_refs, traces[t]->size());
        for (const auto &group : fused_groups) {
            const CacheConfig &rep = configs[group.front()];
            const bool shard = shouldShard(shard_mode, rep, threads,
                                           limit, competing);
            auto engine = std::make_unique<FusedReplay>(
                selectConfigs(configs, group),
                shard ? planShardCount(rep, threads) : 1);
            FusedReplay *eng = engine.get();
            if (eng->numShards() == 1) {
                const PackedTrace *ptrace = traces[t].get();
                tasks.push_back([eng, ptrace, limit] {
                    eng->run(ptrace->data(), limit);
                });
            } else {
                auto strace = shardedTraceShared(
                    traces[t], eng->blockBits(), eng->shardBits(),
                    limit);
                for (std::uint32_t s = 0; s < eng->numShards();
                     ++s) {
                    tasks.push_back([eng, strace, s] {
                        eng->runShard(s, *strace);
                    });
                }
            }
            fused_engines[t].push_back(std::move(engine));
        }
        for (const std::size_t c : residual) {
            if (shouldShard(shard_mode, configs[c], threads, limit,
                            competing)) {
                shard_index[t].push_back(c);
                shard_engines[t].push_back(
                    std::make_unique<ShardReplay>(
                        configs[c],
                        planShardCount(configs[c], threads)));
            } else {
                batch_index[t].push_back(c);
            }
        }
        if (!batch_index[t].empty()) {
            batches[t] = std::make_unique<BatchReplay>(
                selectConfigs(configs, batch_index[t]));
            for (std::size_t tile = 0; tile < batches[t]->numTiles();
                 ++tile) {
                tasks.push_back([&batches, &traces, max_refs, t, tile] {
                    batches[t]->runTile(tile, *traces[t], max_refs);
                });
            }
        }
        for (auto &engine : shard_engines[t]) {
            auto strace =
                shardedTraceShared(traces[t], engine->blockBits(),
                                   engine->shardBits(), limit);
            ShardReplay *eng = engine.get();
            for (std::uint32_t s = 0; s < eng->numShards(); ++s) {
                tasks.push_back(
                    [eng, strace, s] { eng->runShard(s, *strace); });
            }
        }
        for (const std::size_t c : split_list) {
            tasks.push_back([&, t, c, limit] {
                OCCSIM_TELEM_STAGE("engine.direct");
                SplitCache pair = makeEvenSplit(configs[c]);
                pair.replayPacked(traces[t]->data(),
                                  static_cast<std::size_t>(limit));
                pair.finalizeResidencies();
                out[t][c] = summarizeSplit(configs[c], pair);
                OCCSIM_TELEM_COUNT("engine.direct.refs", limit);
                OCCSIM_TELEM_COUNT("engine.direct.bytes",
                                   limit * sizeof(PackedRecord));
            });
        }
    }

    poolOrGlobal(request.pool)
        .parallelFor(tasks.size(),
                     [&](std::size_t i) { tasks[i](); });

    std::uint64_t refs = 0;
    for (std::size_t t = 0; t < traces.size(); ++t) {
        refs += max_refs == 0
                    ? traces[t]->size()
                    : std::min<std::uint64_t>(max_refs,
                                              traces[t]->size());
        if (batches[t] != nullptr) {
            const auto results = batches[t]->results();
            for (std::size_t k = 0; k < results.size(); ++k)
                out[t][batch_index[t][k]] = results[k];
        }
        for (std::size_t k = 0; k < shard_engines[t].size(); ++k) {
            out[t][shard_index[t][k]] = shard_engines[t][k]->result();
            shard_info.telem.accumulate(*shard_engines[t][k]);
            shard_info.shardedConfigs[shard_index[t][k]] = true;
        }
        for (std::size_t g = 0; g < fused_engines[t].size(); ++g) {
            const FusedReplay &eng = *fused_engines[t][g];
            const auto results = eng.results();
            for (std::size_t k = 0; k < results.size(); ++k) {
                out[t][fused_groups[g][k]] = results[k];
                fused_info.fusedConfigs[fused_groups[g][k]] = true;
            }
            ++fused_info.fusedRuns;
            if (eng.numShards() > 1)
                shard_info.telem.accumulate(eng);
        }
    }
    return refs;
}

/**
 * Scenario path: every (trace, config) pair is one CoherentSystem
 * task — the coherent engine is a strictly serial bus model, so the
 * grid cell is the unit of parallelism. Serves both the MemRef and
 * the packed-trace inputs (core routing comes from MemRef::core /
 * the packed core bits either way).
 */
std::uint64_t
runScenarioGrid(const SweepRequest &request, SweepReport &report)
{
    const auto &configs = request.configs;
    const std::uint64_t max_refs = request.maxRefs;
    const bool packed_path = !request.packedTraces.empty();
    const std::size_t num_traces = packed_path
                                       ? request.packedTraces.size()
                                       : request.traces.size();

    report.perTrace.assign(num_traces,
                           std::vector<SweepResult>(configs.size()));
    auto &out = report.perTrace;

    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_traces * configs.size());
    std::uint64_t refs = 0;
    for (std::size_t t = 0; t < num_traces; ++t) {
        const std::uint64_t limit =
            packed_path
                ? (max_refs == 0
                       ? request.packedTraces[t]->size()
                       : std::min<std::uint64_t>(
                             max_refs, request.packedTraces[t]->size()))
                : traceLimit(*request.traces[t], max_refs);
        refs += limit;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            tasks.push_back([&, t, c, limit] {
                OCCSIM_TELEM_STAGE("engine.coherent");
                CoherentSystem system(request.scenario, configs[c]);
                if (packed_path) {
                    system.replayPacked(
                        request.packedTraces[t]->data(),
                        static_cast<std::size_t>(limit));
                } else {
                    const std::vector<MemRef> &trace_refs =
                        request.traces[t]->refs();
                    for (std::uint64_t r = 0; r < limit; ++r)
                        system.access(trace_refs[r]);
                }
                system.finalize();
                out[t][c] = summarizeCoherent(configs[c], system);
                OCCSIM_TELEM_COUNT("engine.coherent.refs", limit);
                OCCSIM_TELEM_COUNT("engine.coherent.bytes",
                                   limit * (packed_path
                                                ? sizeof(PackedRecord)
                                                : sizeof(MemRef)));
            });
        }
    }
    poolOrGlobal(request.pool)
        .parallelFor(tasks.size(),
                     [&](std::size_t i) { tasks[i](); });
    return refs;
}

/** Sampling-engine activity of one sweep, for the manifest. */
struct SampleInfo
{
    std::size_t sampledRuns = 0;
    std::uint64_t units = 0;
    std::uint64_t measuredRefs = 0;
};

/**
 * Sampled path: one SampleReplay per trace over the shared packed
 * trace, run as two pool phases — every warming task (one per
 * (trace, block-size family), producing the live-point checkpoints),
 * then every measure task (one per (trace, config)). The barrier
 * between the phases is required: a measure task reads the
 * checkpoints its trace's warm tasks write.
 */
std::uint64_t
runSampledGrid(const SweepRequest &request, SweepReport &report,
               SampleInfo &sample_info)
{
    const auto &traces = request.traces;
    std::uint64_t refs = 0;

    std::vector<std::unique_ptr<SampleReplay>> engines;
    std::vector<std::shared_ptr<const PackedTrace>> packed;
    engines.reserve(traces.size());
    packed.reserve(traces.size());
    for (const auto &trace : traces) {
        packed.push_back(packedTraceShared(trace));
        engines.push_back(std::make_unique<SampleReplay>(
            request.configs, request.sample));
        engines.back()->prepare(*packed.back(), request.maxRefs);
        refs += traceLimit(*trace, request.maxRefs);
    }

    std::vector<std::function<void()>> warm_tasks;
    for (std::size_t t = 0; t < traces.size(); ++t) {
        SampleReplay *eng = engines[t].get();
        const PackedTrace *trace = packed[t].get();
        for (std::size_t f = 0; f < eng->numWarmTasks(); ++f) {
            warm_tasks.push_back(
                [eng, trace, f] { eng->runWarmTask(f, *trace); });
        }
    }
    poolOrGlobal(request.pool)
        .parallelFor(warm_tasks.size(),
                     [&](std::size_t i) { warm_tasks[i](); });

    std::vector<std::function<void()>> measure_tasks;
    for (std::size_t t = 0; t < traces.size(); ++t) {
        SampleReplay *eng = engines[t].get();
        const PackedTrace *trace = packed[t].get();
        for (std::size_t c = 0; c < eng->numMeasureTasks(); ++c) {
            measure_tasks.push_back(
                [eng, trace, c] { eng->runMeasureTask(c, *trace); });
        }
    }
    poolOrGlobal(request.pool)
        .parallelFor(measure_tasks.size(),
                     [&](std::size_t i) { measure_tasks[i](); });

    report.perTrace.reserve(traces.size());
    for (std::size_t t = 0; t < traces.size(); ++t) {
        report.perTrace.push_back(engines[t]->results());
        sample_info.units += engines[t]->units().size();
        sample_info.measuredRefs += engines[t]->measuredRefs();
    }
    sample_info.sampledRuns = traces.size() * request.configs.size();
    return refs;
}

/** Engine a config routes to under @p engine (manifest vocabulary).
 *  @p sharded: the set-sharded engine served it on >= 1 trace;
 *  @p fused: a fused group pass did (the two are exclusive — a fused
 *  config shards inside its group, reported as "fused"). */
const char *
configEngineName(const CacheConfig &config, SweepEngine engine,
                 bool sharded, bool is_fused)
{
    if (config.partition == CachePartition::SplitID)
        return "split";
    if (engine == SweepEngine::Sampled)
        return "sample";
    if (engine == SweepEngine::DirectOnly)
        return "direct";
    if (is_fused)
        return "fused";
    if (sharded)
        return "shard";
    return singlePassEligible(config) ? "single_pass" : "batch";
}

} // namespace

const char *
sweepEngineName(SweepEngine engine)
{
    switch (engine) {
    case SweepEngine::Auto:
        return "auto";
    case SweepEngine::DirectOnly:
        return "direct_only";
    case SweepEngine::CrossCheck:
        return "cross_check";
    case SweepEngine::Sampled:
        return "sampled";
    }
    return "unknown";
}

SweepReport
runSweep(const SweepRequest &request)
{
    const bool packed_path = !request.packedTraces.empty();
    occsim_assert(packed_path || !request.traces.empty(),
                  "no traces to sweep");
    occsim_assert(!packed_path || request.traces.empty(),
                  "traces and packedTraces are mutually exclusive");
    occsim_assert(!request.configs.empty(),
                  "sweep needs at least one config");
    for (const auto &trace : request.traces)
        occsim_assert(trace != nullptr, "null trace in sweep request");
    for (const auto &trace : request.packedTraces)
        occsim_assert(trace != nullptr,
                      "null packed trace in sweep request");
    const std::string scenario_error =
        validateScenario(request.scenario, request.configs);
    occsim_assert(scenario_error.empty(), "invalid scenario: %s",
                  scenario_error.c_str());
    const bool multicore = request.scenario.multicore();
    if (multicore) {
        occsim_assert(request.engine == SweepEngine::Auto,
                      "multicore scenarios route every config to the "
                      "coherent engine; the %s policy does not apply",
                      sweepEngineName(request.engine));
        occsim_assert(!request.probe,
                      "probe is incompatible with multicore scenarios "
                      "(no per-config Cache is retained)");
    }
    if (request.engine == SweepEngine::Sampled) {
        for (const CacheConfig &config : request.configs) {
            occsim_assert(config.partition == CachePartition::Unified,
                          "split I/D configs are not supported by the "
                          "sampling engine (%s)",
                          config.shortName().c_str());
        }
    }
    if (packed_path && !multicore) {
        // Packed records carry no MemRef stream, so only the replay
        // engines (batch / set-sharded) can serve this path.
        occsim_assert(request.engine == SweepEngine::Auto,
                      "packedTraces requires SweepEngine::Auto (the "
                      "%s policy needs a MemRef stream)",
                      sweepEngineName(request.engine));
        occsim_assert(!request.probe,
                      "probe is incompatible with packedTraces (no "
                      "per-config Cache is retained)");
    }

    const auto start = std::chrono::steady_clock::now();

    SweepReport report;
    std::size_t cross_check_samples = 0;
    ShardInfo shard_info;
    shard_info.shardedConfigs.assign(request.configs.size(), false);
    FusedInfo fused_info;
    fused_info.fusedConfigs.assign(request.configs.size(), false);
    SampleInfo sample_info;
    std::uint64_t refs = 0;
    if (multicore) {
        refs = runScenarioGrid(request, report);
    } else if (packed_path) {
        refs = runPackedGrid(request, report, shard_info, fused_info);
    } else if (request.engine == SweepEngine::Sampled) {
        // A probe needs a finished full-trace Cache to inspect; the
        // sampling engine never has one.
        occsim_assert(!request.probe,
                      "probe is incompatible with SweepEngine::"
                      "Sampled (no full-trace Cache exists)");
        refs = runSampledGrid(request, report, sample_info);
    } else if (request.engine == SweepEngine::CrossCheck ||
               request.probe) {
        refs = runPerTraceRunners(request, report,
                                  cross_check_samples, shard_info,
                                  fused_info);
    } else {
        refs = runFlattenedGrid(request, report, shard_info,
                                fused_info);
    }
    report.refs = refs;

    if (request.wantAverage)
        report.average = averageResults(report.perTrace);

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const std::uint64_t simulated =
        refs * static_cast<std::uint64_t>(request.configs.size());

    // Sweep-level telemetry: an explicit request sink records
    // unconditionally; otherwise the global registry (subject to the
    // global enable flag).
    const auto ns = static_cast<std::uint64_t>(wall_ms * 1e6);
    if (request.telemetry != nullptr) {
        request.telemetry->stageAdd("sweep", ns);
        request.telemetry->counterAdd("sweep.refs", simulated);
    } else if (obs::telemetryEnabled()) {
        obs::telemetry().stageAdd("sweep", ns);
        obs::telemetry().counterAdd("sweep.refs", simulated);
    }

    // Session manifest: trace identities, routing, and timing.
    for (const auto &trace : request.traces)
        obs::recordTrace(trace->name(), trace->refs().size());
    for (const auto &trace : request.packedTraces)
        obs::recordTrace(trace->name(), trace->size());

    obs::SweepRecord record;
    record.label = request.label.empty() ? "sweep" : request.label;
    record.engineMode = sweepEngineName(request.engine);
    record.threads =
        static_cast<unsigned>(poolOrGlobal(request.pool).size());
    record.numTraces =
        packed_path ? request.packedTraces.size()
                    : request.traces.size();
    record.maxRefs = request.maxRefs;
    record.refsSimulated = simulated;
    record.wallMs = wall_ms;
    record.crossCheckSamples = cross_check_samples;
    record.shardedRuns = shard_info.telem.shardedRuns;
    record.shardMaxShards = shard_info.telem.maxShards;
    record.shardMaxRefs = shard_info.telem.maxShardRefs;
    record.shardMinRefs = shard_info.telem.minShardRefs;
    record.fusedRuns = fused_info.fusedRuns;
    record.fusedConfigs = static_cast<std::size_t>(std::count(
        fused_info.fusedConfigs.begin(),
        fused_info.fusedConfigs.end(), true));
    record.sampledRuns = sample_info.sampledRuns;
    if (sample_info.sampledRuns > 0) {
        record.sampleUnitRefs = request.sample.unitRefs;
        record.sampleIntervalUnits = request.sample.intervalUnits;
        record.sampleWarmupRefs = request.sample.warmupRefs;
        record.sampleUnits = sample_info.units;
        record.sampleMeasuredRefs = sample_info.measuredRefs;
    }
    // Sampled manifests carry the per-config miss-ratio estimate
    // with its uncertainty (cross-trace combined, same arithmetic as
    // SweepReport::average); coherent manifests likewise carry the
    // per-config coherency-traffic columns.
    std::vector<SweepResult> sampled_avg;
    if (request.engine == SweepEngine::Sampled) {
        sampled_avg = request.wantAverage
                          ? report.average
                          : averageResults(report.perTrace);
    }
    std::vector<SweepResult> coherent_avg;
    if (multicore) {
        coherent_avg = request.wantAverage
                           ? report.average
                           : averageResults(report.perTrace);
        record.scenarioCores = request.scenario.cores;
        // Bus-counter totals over every (trace, config) run.
        for (const auto &trace_results : report.perTrace) {
            for (const SweepResult &result : trace_results) {
                const CoherencySummary &coh = result.coherency;
                record.cohBusReads += coh.busReads;
                record.cohBusReadForOwnership +=
                    coh.busReadForOwnership;
                record.cohBusUpgrades += coh.busUpgrades;
                record.cohInvalidations += coh.invalidations;
                record.cohCacheToCacheTransfers +=
                    coh.cacheToCacheTransfers;
                record.cohC2cWords += coh.c2cWords;
                record.cohSnoopWritebackWords +=
                    coh.snoopWritebackWords;
            }
        }
    }
    record.routes.reserve(request.configs.size());
    for (std::size_t c = 0; c < request.configs.size(); ++c) {
        const CacheConfig &config = request.configs[c];
        obs::ConfigRoute route;
        route.config = config.shortName();
        // The packed path has no single-pass fallback: everything not
        // split, fused or sharded ran through the batch engine.
        route.engine =
            multicore
                ? "coherent"
                : (packed_path
                       ? (config.partition == CachePartition::SplitID
                              ? "split"
                              : (fused_info.fusedConfigs[c]
                                     ? "fused"
                                     : (shard_info.shardedConfigs[c]
                                            ? "shard"
                                            : "batch")))
                       : configEngineName(
                             config, request.engine,
                             shard_info.shardedConfigs[c],
                             fused_info.fusedConfigs[c]));
        if (!sampled_avg.empty() && sampled_avg[c].sampled.active) {
            route.sampled = true;
            route.missRatioMean =
                sampled_avg[c].sampled.missRatio.mean;
            route.missRatioStdErr =
                sampled_avg[c].sampled.missRatio.stdErr;
        }
        if (!coherent_avg.empty() &&
            coherent_avg[c].coherency.active) {
            route.coherent = true;
            route.cohInvalPerKiloRef =
                coherent_avg[c].coherency.invalidationsPerKiloRef;
            route.cohTrafficRatio =
                coherent_avg[c].coherency.coherenceTrafficRatio;
        }
        record.routes.push_back(route);
    }
    obs::recordSweep(record);

    report.manifest = obs::currentManifest();
    return report;
}

} // namespace occsim
