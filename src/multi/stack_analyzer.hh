/**
 * @file
 * Mattson LRU stack-distance analysis (Mattson, Gecsei, Slutz &
 * Traiger 1970, the paper's reference [16] and its stated reason for
 * choosing LRU: "LRU permits more efficient simulation").
 *
 * One pass over a trace yields the miss ratio of *every* capacity at
 * once, for a fixed block size:
 *
 *  - StackAnalyzer: fully-associative LRU. The stack distance of a
 *    reference is the number of distinct blocks referenced since the
 *    last touch of its block; a cache of C blocks misses exactly the
 *    references with distance > C (inclusion property).
 *  - SetStackAnalyzer: per-set stacks for a fixed set count; yields
 *    the miss ratio of every associativity at once.
 *
 * Both analyzers run on the shared SetLruTracker order-statistics
 * structure (hash map + Fenwick tree, see single_pass.hh), so a
 * reference costs O(log depth) instead of the O(depth) linear stack
 * scan of the classic implementation. Distances beyond max_depth are
 * classified exactly as the historical bounded-stack code did: a
 * bounded LRU stack of depth D evicts a block precisely when its true
 * reuse distance exceeds D, so exact-distance classification
 * reproduces the old counters bit-for-bit while no longer bounding
 * the per-reference search.
 *
 * These analyzers double as an independent oracle for the Cache model
 * (with sub-block == block their predictions must match direct
 * simulation exactly), which the test suite exploits.
 */

#ifndef OCCSIM_MULTI_STACK_ANALYZER_HH
#define OCCSIM_MULTI_STACK_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "multi/single_pass.hh"
#include "trace/trace.hh"
#include "util/bitops.hh"

namespace occsim {

/** Fully-associative LRU stack-distance profiler. */
class StackAnalyzer
{
  public:
    /**
     * @param block_size block size in bytes (power of two).
     * @param max_depth stack distances beyond this count as infinite
     *        (they miss in every capacity the analyzer can answer
     *        for); bounds the histogram, not the search cost.
     */
    explicit StackAnalyzer(std::uint32_t block_size,
                           std::uint32_t max_depth = 4096);

    /** Record one reference. */
    void process(Addr addr);

    /** Process all references of @p trace. */
    void processTrace(const VectorTrace &trace);

    std::uint64_t refs() const { return refs_; }

    /** Number of references that miss in every answerable capacity:
     *  first touches plus reuses beyond max_depth (the historical
     *  bounded-stack accounting). */
    std::uint64_t distinctBlocks() const { return distinct_; }

    /**
     * Miss ratio of a fully-associative LRU cache holding
     * @p capacity_blocks blocks (demand fetch, cold start).
     */
    double missRatioForCapacity(std::uint32_t capacity_blocks) const;

    /** Raw histogram: hist[d] = refs with stack distance d (d >= 1);
     *  hist[0] unused. */
    const std::vector<std::uint64_t> &distanceHistogram() const
    {
        return distanceHist_;
    }

    /** References whose (exact) distance exceeded max_depth; a
     *  subset of distinctBlocks(). */
    std::uint64_t overflowRefs() const { return overflow_; }

  private:
    std::uint32_t blockBits_;
    std::uint32_t maxDepth_;
    SetLruTracker tracker_;  ///< one set: fully associative
    std::vector<std::uint64_t> distanceHist_;
    /** Lazily rebuilt prefix sums: hitsUpTo_[c] = refs with distance
     *  in [1, c] — one pass instead of a rescan per query. */
    mutable std::vector<std::uint64_t> hitsUpTo_;
    mutable bool prefixStale_ = true;
    std::uint64_t refs_ = 0;
    std::uint64_t distinct_ = 0;
    std::uint64_t overflow_ = 0;
};

/** Per-set LRU stack profiler: all associativities at fixed sets. */
class SetStackAnalyzer
{
  public:
    SetStackAnalyzer(std::uint32_t block_size, std::uint32_t num_sets,
                     std::uint32_t max_depth = 256);

    void process(Addr addr);
    void processTrace(const VectorTrace &trace);

    std::uint64_t refs() const { return refs_; }

    /** hist[d] = references with per-set stack distance exactly d
     *  (1-based; index 0 unused). Distances beyond max_depth are not
     *  recorded. */
    const std::vector<std::uint64_t> &distanceHistogram() const
    {
        return distanceHist_;
    }

    /** Miss ratio of an LRU set-associative cache with this block
     *  size, this set count, and associativity @p assoc. */
    double missRatioForAssoc(std::uint32_t assoc) const;

  private:
    std::uint32_t blockBits_;
    std::uint32_t maxDepth_;
    SetLruTracker tracker_;
    std::vector<std::uint64_t> distanceHist_;
    mutable std::vector<std::uint64_t> hitsUpTo_;
    mutable bool prefixStale_ = true;
    std::uint64_t refs_ = 0;
    std::uint64_t missesBeyondDepth_ = 0;
};

} // namespace occsim

#endif // OCCSIM_MULTI_STACK_ANALYZER_HH
