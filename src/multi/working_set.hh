/**
 * @file
 * Working-set analysis (Denning's W(t, T)): the number of distinct
 * blocks a trace touches per window of T references. This is the
 * quantity the paper's intuition runs on — a cache "works" when the
 * working set of the workload fits — and the tool the suites'
 * calibration is checked with (a Z8000 utility's working set is a few
 * KB; a System/370 job's keeps growing past 64 KB).
 */

#ifndef OCCSIM_MULTI_WORKING_SET_HH
#define OCCSIM_MULTI_WORKING_SET_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace occsim {

/** One row of a working-set profile. */
struct WorkingSetPoint
{
    std::uint64_t window = 0;        ///< T, in references
    double meanBlocks = 0.0;         ///< mean distinct blocks per window
    double meanBytes = 0.0;          ///< meanBlocks * blockSize
    std::uint64_t maxBlocks = 0;     ///< worst window
};

/**
 * Compute the working-set profile of @p trace at the given window
 * sizes, counting distinct @p block_size-aligned blocks per
 * non-overlapping window (windows that do not fit are ignored).
 * Optionally restrict to one reference kind.
 */
class WorkingSetAnalyzer
{
  public:
    enum class Select { All, InstructionsOnly, DataOnly };

    explicit WorkingSetAnalyzer(std::uint32_t block_size = 16,
                                Select select = Select::All);

    /** Profile @p trace at each window size (ascending). */
    std::vector<WorkingSetPoint>
    profile(const VectorTrace &trace,
            const std::vector<std::uint64_t> &windows) const;

    /**
     * Smallest power-of-two cache size (bytes) whose capacity covers
     * the mean working set of @p window references; the first-order
     * "what size cache does this program want" answer.
     */
    std::uint64_t suggestedCacheBytes(const VectorTrace &trace,
                                      std::uint64_t window) const;

  private:
    std::uint32_t blockSize_;
    Select select_;
};

} // namespace occsim

#endif // OCCSIM_MULTI_WORKING_SET_HH
