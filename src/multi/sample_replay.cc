#include "multi/sample_replay.hh"

#include <algorithm>
#include <cstring>

#include "cache/cache_geometry.hh"
#include "multi/single_pass.hh"
#include "multi/sweep_runner.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace occsim {

namespace {

/** Empty-slot sentinel of warm rows and checkpoints; matches the
 *  Cache frame sentinel (block addresses are >> blockBits >= 1, so
 *  all-ones can never name a real block). */
constexpr Addr kEmptySlot = ~Addr(0);

/** Chunk length of the warming pass: long enough to amortize the
 *  per-group loop setup, short enough that the trace chunk stays
 *  cache-resident while every group of the family re-reads it. */
constexpr std::uint64_t kWarmChunk = 4096;

} // namespace

std::vector<SampleUnit>
planSampleUnits(std::uint64_t limit, const SampleSpec &spec)
{
    std::vector<SampleUnit> units;
    if (limit == 0)
        return units;
    const std::uint64_t unit = std::max<std::uint64_t>(
        1, spec.unitRefs);
    const std::uint64_t stride =
        unit * std::max<std::uint64_t>(1, spec.intervalUnits);
    Rng rng(spec.seed);
    for (std::uint64_t window = spec.warmupRefs;
         window + stride <= limit; window += stride) {
        const std::uint64_t offset =
            spec.stratified ? rng.below(stride - unit + 1) : 0;
        units.push_back(
            SampleUnit{window + offset, window + offset + unit});
    }
    if (units.empty()) {
        // Nothing fits (short trace or oversized warmup): measure
        // the trace tail as one unit so smoke-length runs still
        // produce a (single-observation, zero-CI) estimate.
        const std::uint64_t begin = limit > unit ? limit - unit : 0;
        units.push_back(SampleUnit{begin, limit});
    }
    return units;
}

bool
checkpointEligible(const CacheConfig &config)
{
    // The single-pass family minus FIFO: the warm MRU arrays are LRU
    // stacks, and only LRU has the prefix-inclusion property that
    // lets one maxAssoc-deep row seed every shallower associativity.
    return singlePassEligible(config) &&
           config.replacement == ReplacementPolicy::LRU;
}

SampleReplay::SampleReplay(const std::vector<CacheConfig> &configs,
                           const SampleSpec &spec)
    : spec_(spec), configs_(configs)
{
    occsim_assert(!configs_.empty(),
                  "sampled sweep needs at least one config");
}

void
SampleReplay::prepare(const PackedTrace &trace, std::uint64_t max_refs)
{
    limit_ = trace.size();
    if (max_refs != 0)
        limit_ = std::min(limit_, max_refs);
    units_ = planSampleUnits(limit_, spec_);
    measuredRefs_ = 0;
    for (const SampleUnit &u : units_)
        measuredRefs_ += u.end - u.begin;

    routes_.assign(configs_.size(), Route{});
    families_.clear();
    estimates_.assign(configs_.size(), SampleEstimates{});
    means_.assign(configs_.size(), std::array<double, 6>{});
    grossBytes_.assign(configs_.size(), 0);

    if (spec_.forceDirect)
        return;

    // Group the checkpoint-eligible configs: one warming family per
    // block size, one group per set count (maxAssoc-deep rows serve
    // every member associativity via LRU inclusion).
    for (std::size_t c = 0; c < configs_.size(); ++c) {
        if (!checkpointEligible(configs_[c]))
            continue;
        const CacheGeometry geom(configs_[c]);
        const std::uint32_t block_bits = geom.blockBits();
        const std::uint32_t num_sets =
            static_cast<std::uint32_t>(geom.numSets());
        const std::uint32_t assoc = geom.assoc();

        std::size_t f = 0;
        for (; f < families_.size(); ++f) {
            if (families_[f].blockBits == block_bits)
                break;
        }
        if (f == families_.size()) {
            families_.push_back(WarmFamily{});
            families_.back().blockBits = block_bits;
        }
        WarmFamily &family = families_[f];

        std::size_t g = 0;
        for (; g < family.groups.size(); ++g) {
            if (family.groups[g].numSets == num_sets)
                break;
        }
        if (g == family.groups.size()) {
            family.groups.push_back(WarmGroup{});
            family.groups.back().numSets = num_sets;
        }
        WarmGroup &group = family.groups[g];
        group.assoc = std::max(group.assoc, assoc);

        routes_[c].family = static_cast<std::int32_t>(f);
        routes_[c].group = static_cast<std::int32_t>(g);
    }

    for (WarmFamily &family : families_) {
        for (WarmGroup &group : family.groups) {
            const std::size_t row_words =
                static_cast<std::size_t>(group.numSets) * group.assoc;
            group.rows.assign(row_words, kEmptySlot);
            group.checkpoints.assign(units_.size() * row_words,
                                     kEmptySlot);
        }
    }
}

template <std::uint32_t A>
void
SampleReplay::updateRowsSpec(Addr *rows, std::uint32_t set_mask,
                             std::uint32_t block_bits,
                             const PackedRecord *refs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Addr blk = refs[i].addr() >> block_bits;
        Addr *row =
            rows + static_cast<std::size_t>(blk & set_mask) * A;
        if (row[0] == blk)
            continue;  // MRU hit — the hot case of any real trace
        if constexpr (A == 1) {
            row[0] = blk;
        } else {
            // Find blk (or fall off the LRU end), then shift the
            // more-recent entries down one and re-insert at MRU.
            std::uint32_t pos = 1;
            while (pos < A - 1 && row[pos] != blk)
                ++pos;
            for (; pos > 0; --pos)
                row[pos] = row[pos - 1];
            row[0] = blk;
        }
    }
}

void
SampleReplay::updateRows(WarmGroup &group, std::uint32_t block_bits,
                         const PackedRecord *refs, std::size_t n)
{
    Addr *rows = group.rows.data();
    const std::uint32_t set_mask = group.numSets - 1;
    switch (group.assoc) {
      case 1:
        updateRowsSpec<1>(rows, set_mask, block_bits, refs, n);
        break;
      case 2:
        updateRowsSpec<2>(rows, set_mask, block_bits, refs, n);
        break;
      case 4:
        updateRowsSpec<4>(rows, set_mask, block_bits, refs, n);
        break;
      case 8:
        updateRowsSpec<8>(rows, set_mask, block_bits, refs, n);
        break;
      default:
        // Runtime-associativity fallback, same algorithm.
        for (std::size_t i = 0; i < n; ++i) {
            const Addr blk = refs[i].addr() >> block_bits;
            Addr *row =
                rows + static_cast<std::size_t>(blk & set_mask) *
                           group.assoc;
            if (row[0] == blk)
                continue;
            std::uint32_t pos = 1;
            while (pos < group.assoc - 1 && row[pos] != blk)
                ++pos;
            for (; pos > 0; --pos)
                row[pos] = row[pos - 1];
            row[0] = blk;
        }
        break;
    }
}

void
SampleReplay::runWarmTask(std::size_t family_index,
                          const PackedTrace &trace)
{
    OCCSIM_TELEM_STAGE("engine.sample");
    WarmFamily &family = families_[family_index];
    const PackedRecord *data = trace.data();
    const std::uint32_t block_bits = family.blockBits;

    std::size_t next_unit = 0;
    std::uint64_t pos = 0;
    while (pos < limit_ || next_unit < units_.size()) {
        // Snapshot every unit whose boundary sits at pos (live
        // points: the state a full warm pass would have here).
        while (next_unit < units_.size() &&
               units_[next_unit].begin == pos) {
            for (WarmGroup &group : family.groups) {
                const std::size_t row_words = group.rows.size();
                std::memcpy(group.checkpoints.data() +
                                next_unit * row_words,
                            group.rows.data(),
                            row_words * sizeof(Addr));
            }
            ++next_unit;
        }
        if (pos >= limit_)
            break;
        std::uint64_t stop = std::min(limit_, pos + kWarmChunk);
        if (next_unit < units_.size())
            stop = std::min(stop, units_[next_unit].begin);
        for (WarmGroup &group : family.groups) {
            updateRows(group, block_bits, data + pos,
                       static_cast<std::size_t>(stop - pos));
        }
        pos = stop;
    }
    OCCSIM_TELEM_COUNT("engine.sample.warm_refs",
                       limit_ * family.groups.size());
}

void
SampleReplay::runMeasureTask(std::size_t config_index,
                             const PackedTrace &trace)
{
    OCCSIM_TELEM_STAGE("engine.sample");
    const CacheConfig &config = configs_[config_index];
    const PackedRecord *data = trace.data();
    const Route route = routes_[config_index];

    Cache cache(config);
    grossBytes_[config_index] = cache.geometry().grossBytes();

    UnitEstimator est[6];
    const auto record_unit = [&] {
        const SweepResult unit = summarizeStats(
            config, cache.geometry().grossBytes(), cache.stats());
        est[0].add(unit.missRatio);
        est[1].add(unit.warmMissRatio);
        est[2].add(unit.trafficRatio);
        est[3].add(unit.warmTrafficRatio);
        est[4].add(unit.nibbleTrafficRatio);
        est[5].add(unit.warmNibbleTrafficRatio);
    };

    if (route.family >= 0) {
        // Checkpoint path: every unit restores the shared warm
        // snapshot, replays just the unit, and contributes one
        // observation. The whole grid rides one warming pass.
        const WarmGroup &group =
            families_[static_cast<std::size_t>(route.family)]
                .groups[static_cast<std::size_t>(route.group)];
        for (std::size_t u = 0; u < units_.size(); ++u) {
            const SampleUnit unit = units_[u];
            const std::size_t row_words =
                static_cast<std::size_t>(group.numSets) *
                group.assoc;
            cache.seedWarmState(
                group.checkpoints.data() + u * row_words,
                group.assoc);
            cache.resetStats();
            cache.replayPacked(
                data + unit.begin,
                static_cast<std::size_t>(unit.end - unit.begin));
            record_unit();
        }
    } else {
        // Direct path: this config warms its own cache through the
        // Record=false kernel between units (non-LRU / sub-block /
        // non-demand configs, or spec.forceDirect).
        std::uint64_t pos = 0;
        for (const SampleUnit &unit : units_) {
            if (unit.begin > pos) {
                cache.warmPacked(
                    data + pos,
                    static_cast<std::size_t>(unit.begin - pos));
            }
            cache.resetStats();
            cache.replayPacked(
                data + unit.begin,
                static_cast<std::size_t>(unit.end - unit.begin));
            record_unit();
            pos = unit.end;
        }
    }

    SampleEstimates &out = estimates_[config_index];
    out.active = true;
    out.units = units_.size();
    out.unitRefs = spec_.unitRefs;
    out.intervalUnits = spec_.intervalUnits;
    out.warmupRefs = spec_.warmupRefs;
    out.measuredRefs = measuredRefs_;
    out.missRatio = est[0].estimate();
    out.warmMissRatio = est[1].estimate();
    out.trafficRatio = est[2].estimate();
    out.warmTrafficRatio = est[3].estimate();
    out.nibbleTrafficRatio = est[4].estimate();
    out.warmNibbleTrafficRatio = est[5].estimate();
    means_[config_index] = {
        out.missRatio.mean,          out.warmMissRatio.mean,
        out.trafficRatio.mean,       out.warmTrafficRatio.mean,
        out.nibbleTrafficRatio.mean, out.warmNibbleTrafficRatio.mean,
    };
    OCCSIM_TELEM_COUNT("engine.sample.refs", measuredRefs_);
}

std::vector<SweepResult>
SampleReplay::results() const
{
    std::vector<SweepResult> out(configs_.size());
    for (std::size_t c = 0; c < configs_.size(); ++c) {
        SweepResult &result = out[c];
        result.config = configs_[c];
        result.grossBytes = grossBytes_[c];
        result.missRatio = means_[c][0];
        result.warmMissRatio = means_[c][1];
        result.trafficRatio = means_[c][2];
        result.warmTrafficRatio = means_[c][3];
        result.nibbleTrafficRatio = means_[c][4];
        result.warmNibbleTrafficRatio = means_[c][5];
        result.sampled = estimates_[c];
    }
    return out;
}

} // namespace occsim
