#include "multi/fused_replay.hh"

#include <algorithm>
#include <bit>

#include "cache/cache_geometry.hh"
#include "cache/replacement.hh"
#include "multi/shard_replay.hh"
#include "obs/telemetry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace occsim {

bool
fusedEligible(const CacheConfig &config)
{
    return config.replacement != ReplacementPolicy::Random &&
           config.fetch != FetchPolicy::PrefetchNextOnMiss &&
           config.partition == CachePartition::Unified;
}

FusedKey
fusedKeyOf(const CacheConfig &config)
{
    occsim_assert(fusedEligible(config),
                  "fused key of an ineligible config (%s)",
                  config.fullName().c_str());
    const CacheGeometry geom(config);
    FusedKey key;
    key.numSets = geom.numSets();
    key.assoc = geom.assoc();
    key.blockSize = config.blockSize;
    key.replacement = config.replacement;
    key.write = config.write;
    key.writeAllocate = config.writeAllocate;
    return key;
}

std::vector<std::vector<std::size_t>>
fusedGroups(const std::vector<CacheConfig> &configs,
            const std::vector<std::size_t> &candidates)
{
    std::vector<std::vector<std::size_t>> groups;
    std::vector<FusedKey> keys;
    for (const std::size_t i : candidates) {
        if (!fusedEligible(configs[i]))
            continue;
        const FusedKey key = fusedKeyOf(configs[i]);
        std::size_t g = groups.size();
        for (std::size_t k = 0; k < keys.size(); ++k) {
            // A pass addresses its members through one 64-bit config
            // bitmask (the grain-validity planes), so a key with more
            // than kMaxGroupConfigs members splits into several
            // groups — each still a valid fused pass on its own.
            if (keys[k] == key &&
                groups[k].size() < kMaxGroupConfigs) {
                g = k;
                break;
            }
        }
        if (g == groups.size()) {
            keys.push_back(key);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }
    return groups;
}

/**
 * One shard's fused state: the shared tag array + replacement order,
 * and per (frame, config) the 64-bit sub-block mask planes plus
 * per-config statistics. The kernel is templated on the group-level
 * policies (replacement, write, write-allocate) and the
 * associativity, mirroring Cache::replayLoop; only the per-config
 * fetch policy stays a runtime branch, taken solely on miss paths.
 *
 * Three layout/accounting choices keep the dominant path (a
 * reference whose sub-block is valid in every lane) to a few
 * instructions regardless of group size:
 *
 *  - The touched and dirty masks evolve identically for every config
 *    sharing a sub-block size: touched records which sub-blocks were
 *    referenced and dirty which were written, and both are reset by
 *    block-level events the whole group shares. They are stored once
 *    per distinct sub-block size ("class"), not per config.
 *  - The per-config valid masks (fetch policies validate different
 *    spans) are mirrored into per-(frame, grain) bitmasks over the
 *    group's members, where a grain is the group's FINEST sub-block
 *    size: bit c of grainValid_[frame][g] says whether config c's
 *    sub-block containing grain g is valid. The hit path tests all
 *    lanes with one load (~grainValid & allMask_ == 0); only the
 *    missing lanes — usually none — take the per-config slow path.
 *    The mirror is updated exclusively on miss paths, where the
 *    per-config valid/ever masks already live.
 *  - Counters that increment identically for every config on every
 *    reference — accesses, ifetch accesses, write accesses, and (for
 *    write-through) store words — are tallied ONCE per pass and
 *    bulk-added to each config's CacheStats at finalize
 *    (addUniformAccesses); the lanes record only the miss-side
 *    counters, which genuinely depend on the per-config masks. The
 *    totals are integer sums either way, so the derived doubles stay
 *    bit-identical to per-reference recording.
 */
class FusedReplay::Pass
{
  public:
    explicit Pass(const std::vector<CacheConfig> &configs)
    {
        occsim_assert(configs.size() <= kMaxGroupConfigs,
                      "fused pass limited to %zu configs, got %zu",
                      kMaxGroupConfigs, configs.size());
        const CacheGeometry geom(configs.front());
        numSets_ = geom.numSets();
        assoc_ = geom.assoc();
        blockBits_ = geom.blockBits();
        setMask_ = numSets_ - 1;
        blockMask_ = configs.front().blockSize - 1;
        copyBack_ =
            configs.front().write == WritePolicy::CopyBack;
        writeAllocate_ = configs.front().writeAllocate;
        numConfigs_ = static_cast<std::uint32_t>(configs.size());
        allMask_ = numConfigs_ == 64
                       ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << numConfigs_) - 1;
        repl_ = std::make_unique<ReplacementState>(
            configs.front().replacement, numSets_, assoc_,
            configs.front().randomSeed);

        lanes_.reserve(configs.size());
        subBits8_.reserve(configs.size());
        stats_.reserve(configs.size());
        classOf_.reserve(configs.size());
        grainBits_ = geom.blockBits();
        for (const CacheConfig &config : configs) {
            const CacheGeometry g(config);
            Lane lane;
            lane.subBits = g.subBlockBits();
            lane.numSubs = g.subBlocksPerBlock();
            lane.wordsPerSub = g.wordsPerSubBlock();
            lane.fetch = config.fetch;
            lanes_.push_back(lane);
            subBits8_.push_back(
                static_cast<std::uint8_t>(g.subBlockBits()));
            stats_.emplace_back(g.subBlocksPerBlock(),
                                g.subBlocksPerBlock() *
                                    g.wordsPerSubBlock());
            grainBits_ = std::min(grainBits_, g.subBlockBits());
            // Class = first-appearance index of this sub-block size.
            std::uint8_t k = 0;
            while (k < classBits8_.size() &&
                   classBits8_[k] !=
                       static_cast<std::uint8_t>(g.subBlockBits()))
                ++k;
            if (k == classBits8_.size())
                classBits8_.push_back(
                    static_cast<std::uint8_t>(g.subBlockBits()));
            classOf_.push_back(k);
        }
        numClasses_ =
            static_cast<std::uint32_t>(classBits8_.size());
        numGrains_ = std::uint32_t{1} << (blockBits_ - grainBits_);
        for (std::uint32_t c = 0; c < numConfigs_; ++c) {
            grainShift8_.push_back(static_cast<std::uint8_t>(
                lanes_[c].subBits - grainBits_));
        }
        // Members of each class, ascending config index (flat list +
        // offsets), for the eviction/finalize accounting loops.
        classStart_.assign(numClasses_ + 1, 0);
        for (std::uint32_t c = 0; c < numConfigs_; ++c)
            ++classStart_[classOf_[c] + 1];
        for (std::uint32_t k = 0; k < numClasses_; ++k)
            classStart_[k + 1] += classStart_[k];
        classMembers_.resize(numConfigs_);
        {
            std::vector<std::uint32_t> next(classStart_.begin(),
                                            classStart_.end() - 1);
            for (std::uint32_t c = 0; c < numConfigs_; ++c)
                classMembers_[next[classOf_[c]]++] =
                    static_cast<std::uint8_t>(c);
        }

        const std::size_t frames =
            static_cast<std::size_t>(numSets_) * assoc_;
        tags_.assign(frames, kNoTag);
        ve_.assign(frames * numConfigs_, VE{});
        classTouched_.assign(frames * numClasses_, 0);
        classDirty_.assign(frames * numClasses_, 0);
        grainValid_.assign(frames * numGrains_, 0);

        kernel_ = selectKernel(configs.front().replacement, copyBack_,
                               writeAllocate_, assoc_);
    }

    void replay(const PackedRecord *refs, std::size_t n)
    {
        (this->*kernel_)(refs, n);
    }

    /** Exactly Cache::finalizeResidencies, per config: frames in
     *  order, residency (if present and touched) then the dirty
     *  write-back. Also the point where the pass's uniform access
     *  counters are bulk-added to every config (see the class
     *  comment) and rearmed for a further replay span. */
    void finalize()
    {
        for (std::uint32_t c = 0; c < numConfigs_; ++c) {
            stats_[c].addUniformAccesses(
                countedReads_, ifetchReads_, writes_,
                nonAllocWriteBlockMisses_,
                copyBack_ ? nonAllocWriteBlockMisses_ : writes_);
        }
        countedReads_ = 0;
        ifetchReads_ = 0;
        writes_ = 0;
        nonAllocWriteBlockMisses_ = 0;

        for (std::size_t f = 0; f < tags_.size(); ++f) {
            const bool present = tags_[f] != kNoTag;
            const std::size_t cbase = f * numClasses_;
            for (std::uint32_t k = 0; k < numClasses_; ++k) {
                if (present && classTouched_[cbase + k] != 0) {
                    const auto touched = static_cast<std::uint32_t>(
                        std::popcount(classTouched_[cbase + k]));
                    for (std::uint32_t m = classStart_[k];
                         m < classStart_[k + 1]; ++m)
                        stats_[classMembers_[m]].recordResidency(
                            touched);
                    classTouched_[cbase + k] = 0;
                }
                writebackDirty(k, cbase + k);
            }
        }
    }

    const CacheStats &stats(std::size_t c) const { return stats_[c]; }

  private:
    struct Lane
    {
        std::uint32_t subBits = 0;
        std::uint32_t numSubs = 0;
        std::uint32_t wordsPerSub = 0;
        FetchPolicy fetch = FetchPolicy::Demand;
    };

    static constexpr Addr kNoTag = ~Addr(0);

    /** End-of-residency write-back of class @p k's dirty plane entry
     *  @p idx, recorded into every member of the class. */
    void writebackDirty(std::uint32_t k, std::size_t idx)
    {
        if (classDirty_[idx] != 0) {
            const auto dirty_subs = static_cast<std::uint32_t>(
                std::popcount(classDirty_[idx]));
            for (std::uint32_t m = classStart_[k];
                 m < classStart_[k + 1]; ++m) {
                const std::uint32_t c = classMembers_[m];
                stats_[c].recordWriteback(dirty_subs *
                                          lanes_[c].wordsPerSub);
            }
            classDirty_[idx] = 0;
        }
    }

    /** Mirror config @p c's newly valid sub-blocks
     *  [@p sub_begin, @p sub_end) into @p frame's grain-validity
     *  bitmasks (see the class comment). */
    void markGrains(std::uint32_t c, std::size_t frame,
                    std::uint32_t sub_begin, std::uint32_t sub_end)
    {
        const std::uint32_t shift = grainShift8_[c];
        std::uint64_t *gv = grainValid_.data() + frame * numGrains_;
        const std::uint64_t bit = std::uint64_t{1} << c;
        for (std::uint32_t g = sub_begin << shift,
                           e = sub_end << shift;
             g < e; ++g)
            gv[g] |= bit;
    }

    /** The per-config fetch on a (sub-)block miss: identical mask
     *  evolution and burst accounting to Cache::fetchIntoSpec, plus
     *  the grain-validity mirror update. */
    void fetchSub(std::uint32_t c, std::size_t frame,
                  std::uint32_t sub_index, bool counted, bool cold)
    {
        const Lane &lane = lanes_[c];
        VE &ve = ve_[frame * numConfigs_ + c];
        switch (lane.fetch) {
          case FetchPolicy::Demand:
            ve.valid |= (std::uint64_t{1} << sub_index);
            ve.ever |= (std::uint64_t{1} << sub_index);
            emitBurst(c, 1, counted, cold, 0);
            markGrains(c, frame, sub_index, sub_index + 1);
            break;
          case FetchPolicy::LoadForward: {
            const std::uint32_t span = lane.numSubs - sub_index;
            const std::uint64_t span_mask =
                (span == 64 ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << span) - 1))
                << sub_index;
            const std::uint32_t redundant =
                static_cast<std::uint32_t>(
                    std::popcount(ve.valid & span_mask));
            emitBurst(c, span, counted, cold, redundant);
            ve.valid |= span_mask;
            ve.ever |= span_mask;
            markGrains(c, frame, sub_index, lane.numSubs);
            break;
          }
          case FetchPolicy::LoadForwardOptimized: {
            std::uint32_t run = 0;
            for (std::uint32_t i = sub_index; i < lane.numSubs; ++i) {
                const std::uint64_t bit = std::uint64_t{1} << i;
                if (ve.valid & bit) {
                    if (run != 0) {
                        emitBurst(c, run, counted, cold, 0);
                        run = 0;
                    }
                } else {
                    ve.valid |= bit;
                    ve.ever |= bit;
                    ++run;
                }
            }
            if (run != 0)
                emitBurst(c, run, counted, cold, 0);
            // Every sub-block from sub_index on is now valid
            // (already-valid runs included).
            markGrains(c, frame, sub_index, lane.numSubs);
            break;
          }
          case FetchPolicy::PrefetchNextOnMiss:
            panic("prefetch config in a fused pass");
        }
    }

    void emitBurst(std::uint32_t c, std::uint32_t sub_blocks,
                   bool counted, bool cold,
                   std::uint32_t redundant_sub_blocks)
    {
        const std::uint32_t words =
            sub_blocks * lanes_[c].wordsPerSub;
        if (counted) {
            stats_[c].recordBurst(
                words, cold,
                redundant_sub_blocks * lanes_[c].wordsPerSub);
        } else {
            stats_[c].recordWriteBurst(words);
        }
    }

    template <std::uint32_t A>
    int findWay(std::uint32_t set, Addr block_addr) const
    {
        const std::uint32_t assoc = A != 0 ? A : assoc_;
        const Addr *tags =
            tags_.data() + static_cast<std::size_t>(set) * assoc;
        for (std::uint32_t way = 0; way < assoc; ++way) {
            if (tags[way] == block_addr)
                return static_cast<int>(way);
        }
        return -1;
    }

    /**
     * One reference through the whole group. The per-config recorder
     * sequence matches Cache::accessSpec call for call — minus the
     * counters hoisted into the pass-level uniform tallies (see the
     * class comment): on a block hit the touched bit, then the
     * sub-miss accounting and fetch when the valid bit is clear; on
     * a block miss the victim's residency + write-back (only when an
     * actual eviction happens), the miss-side counters, the meta
     * reset, the fetch, and the dirty bit — the shared tag write and
     * replacement updates carry no statistics, so hoisting them out
     * of the config loop cannot perturb any counter.
     */
    template <ReplacementPolicy R, bool CopyBack, bool WriteAllocate,
              std::uint32_t A>
    void accessAll(Addr addr, bool is_write, bool is_ifetch)
    {
        const std::uint32_t assoc = A != 0 ? A : assoc_;
        const Addr block_addr = addr >> blockBits_;
        const std::uint32_t block_off =
            static_cast<std::uint32_t>(addr & blockMask_);

        // Same block as the previous reference: the frame is known,
        // the tag certainly still resident (an eviction in between
        // would have changed lastBlock_), and the way is already at
        // the protected end of the order — the probe and the LRU
        // update are both no-ops, so skip them. Spatial locality
        // makes this the most common record shape by far.
        std::uint32_t frame_index;
        if (block_addr == lastBlock_) {
            frame_index = lastFrame_;
        } else {
            const std::uint32_t set = static_cast<std::uint32_t>(
                block_addr & setMask_);
            const int way = findWay<A>(set, block_addr);
            if (way < 0) {
                blockMiss<R, CopyBack, WriteAllocate, A>(
                    set, block_addr, block_off, is_write, is_ifetch);
                return;
            }
            frame_index =
                set * assoc + static_cast<std::uint32_t>(way);
            // Interleaved streams (instruction fetch vs data) leave
            // each stream's block most-protected in its own set even
            // when it is not the globally-previous block, so the
            // LRU promotion is very often a no-op — detect that with
            // one compare instead of the scan-and-shift.
            if constexpr (R == ReplacementPolicy::LRU) {
                if (repl_->mostProtected<A>(set) !=
                    static_cast<std::uint32_t>(way)) {
                    repl_->onAccessSpec<R, A>(
                        set, static_cast<std::uint32_t>(way));
                }
            } else {
                repl_->onAccessSpec<R, A>(
                    set, static_cast<std::uint32_t>(way));
            }
            lastBlock_ = block_addr;
            lastFrame_ = frame_index;
        }

        const std::size_t cbase =
            static_cast<std::size_t>(frame_index) * numClasses_;
        std::uint64_t *ct = classTouched_.data() + cbase;
        // One load answers "is this reference's sub-block valid in
        // every lane?" — the overwhelmingly common case.
        std::uint64_t missing =
            ~grainValid_[static_cast<std::size_t>(frame_index) *
                             numGrains_ +
                         (block_off >> grainBits_)] &
            allMask_;
        if (!is_write) {
            ++countedReads_;
            ifetchReads_ += is_ifetch ? 1 : 0;
            for (std::uint32_t k = 0; k < numClasses_; ++k)
                ct[k] |= std::uint64_t{1}
                         << (block_off >> classBits8_[k]);
            while (missing != 0) [[unlikely]] {
                const auto c = static_cast<std::uint32_t>(
                    std::countr_zero(missing));
                missing &= missing - 1;
                // Sub-block miss under a matching tag.
                const std::uint32_t sub_index =
                    block_off >> subBits8_[c];
                const std::uint64_t sub_bit = std::uint64_t{1}
                                              << sub_index;
                const bool cold =
                    (ve_[static_cast<std::size_t>(frame_index) *
                             numConfigs_ +
                         c]
                         .ever &
                     sub_bit) == 0;
                stats_[c].recordMissCounters(is_ifetch, false, cold);
                fetchSub(c, frame_index, sub_index, true, cold);
            }
        } else {
            ++writes_;
            for (std::uint32_t k = 0; k < numClasses_; ++k) {
                const std::uint64_t sub_bit =
                    std::uint64_t{1} << (block_off >> classBits8_[k]);
                ct[k] |= sub_bit;
                if constexpr (CopyBack)
                    classDirty_[cbase + k] |= sub_bit;
            }
            while (missing != 0) [[unlikely]] {
                const auto c = static_cast<std::uint32_t>(
                    std::countr_zero(missing));
                missing &= missing - 1;
                // cold is only consumed by counted bursts, so the
                // write path skips the ever lookup.
                stats_[c].recordWriteMissCounter();
                fetchSub(c, frame_index, block_off >> subBits8_[c],
                         false, false);
            }
        }
    }

    /** The block-miss tail of accessAll, out of line so the hit
     *  path's code stays compact. */
    template <ReplacementPolicy R, bool CopyBack, bool WriteAllocate,
              std::uint32_t A>
    void blockMiss(std::uint32_t set, Addr block_addr,
                   std::uint32_t block_off, bool is_write,
                   bool is_ifetch)
    {
        const std::uint32_t assoc = A != 0 ? A : assoc_;
        if constexpr (!WriteAllocate) {
            if (is_write) {
                // Per config this is one write access, one write
                // miss, and one store word — all uniform, all
                // bulk-added at finalize. No allocation, so the
                // previous reference's frame is untouched and
                // lastBlock_ stays valid.
                ++writes_;
                ++nonAllocWriteBlockMisses_;
                return;
            }
        }
        if (is_write) {
            ++writes_;
        } else {
            ++countedReads_;
            ifetchReads_ += is_ifetch ? 1 : 0;
        }

        // Claim the fill way: first invalid way, else the shared
        // replacement victim (whose residency ends for EVERY config).
        const std::size_t set_base =
            static_cast<std::size_t>(set) * assoc;
        std::uint32_t victim = assoc;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (tags_[set_base + w] == kNoTag) {
                victim = w;
                break;
            }
        }
        const bool evicting = victim == assoc;
        if (evicting)
            victim = repl_->victimSpec<R, A>(set);

        const std::size_t frame_index = set_base + victim;
        const std::size_t cbase = frame_index * numClasses_;
        // The victim's residency ends for every config: per class,
        // one popcount feeds every member's residency histogram and
        // (copy-back) write-back accounting.
        if (evicting) {
            for (std::uint32_t k = 0; k < numClasses_; ++k) {
                const auto touched = static_cast<std::uint32_t>(
                    std::popcount(classTouched_[cbase + k]));
                for (std::uint32_t m = classStart_[k];
                     m < classStart_[k + 1]; ++m)
                    stats_[classMembers_[m]].recordResidency(touched);
                writebackDirty(k, cbase + k);
            }
        }
        // Reset the shared planes for the incoming block: the filled
        // sub-block is touched (and, on an allocating write under
        // copy-back, dirty) in every class.
        for (std::uint32_t k = 0; k < numClasses_; ++k) {
            const std::uint64_t sub_bit =
                std::uint64_t{1} << (block_off >> classBits8_[k]);
            classTouched_[cbase + k] = sub_bit;
            if constexpr (CopyBack)
                classDirty_[cbase + k] = is_write ? sub_bit : 0;
            else
                classDirty_[cbase + k] = 0;
        }
        std::fill_n(grainValid_.begin() + frame_index * numGrains_,
                    numGrains_, std::uint64_t{0});
        for (std::uint32_t c = 0; c < numConfigs_; ++c) {
            const std::uint32_t sub_index =
                block_off >> subBits8_[c];
            const std::uint64_t sub_bit = std::uint64_t{1}
                                          << sub_index;
            const bool cold =
                (ve_[frame_index * numConfigs_ + c].ever & sub_bit) ==
                0;
            if (!is_write)
                stats_[c].recordMissCounters(is_ifetch, true, cold);
            else
                stats_[c].recordWriteMissCounter();
            ve_[frame_index * numConfigs_ + c].valid = 0;
            fetchSub(c, frame_index, sub_index, !is_write, cold);
        }
        tags_[frame_index] = block_addr;
        repl_->onFillSpec<R, A>(set, victim);
        // The filled way is now the most-protected entry of its set,
        // exactly the invariant the same-block fast path relies on.
        lastBlock_ = block_addr;
        lastFrame_ = static_cast<std::uint32_t>(frame_index);
    }

    template <ReplacementPolicy R, bool CopyBack, bool WriteAllocate,
              std::uint32_t A>
    void replayLoop(const PackedRecord *refs, std::size_t n)
    {
        // Same look-ahead as Cache::replayLoop: the tag read of a
        // record a few iterations out is the dominant cache-missing
        // load on large set counts. On the paper-scale geometries the
        // whole pass state fits in L1 and the look-ahead arithmetic
        // would be pure per-record overhead, so it is skipped when
        // the masks and tags together stay under the threshold.
        constexpr std::size_t kPrefetchDistance = 8;
        const std::uint32_t assoc = A != 0 ? A : assoc_;
        const bool prefetch =
            grainValid_.size() * sizeof(std::uint64_t) +
                classTouched_.size() * sizeof(std::uint64_t) +
                tags_.size() * sizeof(Addr) >
            16384;
        for (std::size_t i = 0; i < n; ++i) {
            if (prefetch && i + kPrefetchDistance < n) {
                const Addr ahead = refs[i + kPrefetchDistance].addr();
                const std::size_t frame =
                    static_cast<std::size_t>(
                        (ahead >> blockBits_) & setMask_) *
                    assoc;
                OCCSIM_PREFETCH_READ(tags_.data() + frame);
                OCCSIM_PREFETCH_READ(grainValid_.data() +
                                     frame * numGrains_);
                OCCSIM_PREFETCH_READ(classTouched_.data() +
                                     frame * numClasses_);
            }
            const PackedRecord rec = refs[i];
            accessAll<R, CopyBack, WriteAllocate, A>(
                rec.addr(), rec.isWrite(), rec.isInstruction());
        }
    }

    using Kernel = void (Pass::*)(const PackedRecord *, std::size_t);

    static Kernel selectKernel(ReplacementPolicy repl, bool copy_back,
                               bool write_allocate,
                               std::uint32_t assoc)
    {
        const auto pick_write =
            [copy_back,
             write_allocate]<ReplacementPolicy R, std::uint32_t A>() {
                if (copy_back) {
                    return write_allocate
                               ? &Pass::replayLoop<R, true, true, A>
                               : &Pass::replayLoop<R, true, false, A>;
                }
                return write_allocate
                           ? &Pass::replayLoop<R, false, true, A>
                           : &Pass::replayLoop<R, false, false, A>;
            };
        const auto pick_assoc =
            [&pick_write, assoc]<ReplacementPolicy R>() {
                switch (assoc) {
                  case 1:
                    return pick_write.operator()<R, 1u>();
                  case 2:
                    return pick_write.operator()<R, 2u>();
                  case 4:
                    return pick_write.operator()<R, 4u>();
                  case 8:
                    return pick_write.operator()<R, 8u>();
                  default:
                    return pick_write.operator()<R, 0u>();
                }
            };
        switch (repl) {
          case ReplacementPolicy::LRU:
            return pick_assoc.operator()<ReplacementPolicy::LRU>();
          case ReplacementPolicy::FIFO:
            return pick_assoc.operator()<ReplacementPolicy::FIFO>();
          case ReplacementPolicy::Random:
            break;  // ineligible; fall through to panic
        }
        panic("bad fused replacement policy %d",
              static_cast<int>(repl));
    }

    std::uint32_t numSets_ = 0;
    std::uint32_t assoc_ = 0;
    std::uint32_t blockBits_ = 0;
    Addr setMask_ = 0;
    Addr blockMask_ = 0;
    bool copyBack_ = false;
    bool writeAllocate_ = true;
    /** The miss paths' per-config masks, interleaved so one (frame,
     *  config) lane is one 16-byte read-modify-write. */
    struct VE
    {
        std::uint64_t valid = 0;
        std::uint64_t ever = 0;
    };

    std::uint32_t numConfigs_ = 0;
    std::uint32_t numClasses_ = 0;
    std::uint32_t numGrains_ = 0;
    std::uint32_t grainBits_ = 0;
    /** One bit per member config (numConfigs_ <= 64). */
    std::uint64_t allMask_ = 0;
    Kernel kernel_ = nullptr;
    std::unique_ptr<ReplacementState> repl_;
    std::vector<Lane> lanes_;
    /** lanes_[c].subBits again, one byte per config: the only lane
     *  field the miss loops need, kept dense. */
    std::vector<std::uint8_t> subBits8_;
    /** subBits of each distinct sub-block size ("class"), first-
     *  appearance order. */
    std::vector<std::uint8_t> classBits8_;
    std::vector<std::uint8_t> classOf_;     ///< config -> class
    std::vector<std::uint8_t> grainShift8_; ///< subBits - grainBits
    /** Members of class k: classMembers_[classStart_[k] ..
     *  classStart_[k+1]), ascending config index. */
    std::vector<std::uint32_t> classStart_;
    std::vector<std::uint8_t> classMembers_;
    std::vector<CacheStats> stats_;
    /** Shared block tags (kNoTag = empty); indexed set * assoc + way. */
    std::vector<Addr> tags_;
    // Mask planes (see the class comment): per-config valid/ever,
    // per-class touched/dirty, per-grain config-validity bitmasks.
    std::vector<VE> ve_;                     ///< [frame*numConfigs+c]
    std::vector<std::uint64_t> classTouched_; ///< [frame*numClasses+k]
    std::vector<std::uint64_t> classDirty_;   ///< [frame*numClasses+k]
    std::vector<std::uint64_t> grainValid_;   ///< [frame*numGrains+g]

    // Pass-level uniform access tallies (see the class comment),
    // flushed into every config's CacheStats at finalize.
    std::uint64_t countedReads_ = 0;
    std::uint64_t ifetchReads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t nonAllocWriteBlockMisses_ = 0;

    // Same-block fast path: the previous reference's resident block
    // and its frame. Maintained by every path that (re)establishes
    // residency; kNoTag until the first allocation.
    Addr lastBlock_ = kNoTag;
    std::uint32_t lastFrame_ = 0;
};

FusedReplay::FusedReplay(const std::vector<CacheConfig> &configs,
                         std::uint32_t num_shards)
    : configs_(configs)
{
    occsim_assert(!configs_.empty(),
                  "fused group needs at least one config");
    const FusedKey key = fusedKeyOf(configs_.front());
    for (const CacheConfig &config : configs_) {
        occsim_assert(fusedEligible(config),
                      "fusing an ineligible config (%s)",
                      config.fullName().c_str());
        occsim_assert(fusedKeyOf(config) == key,
                      "fused group mixes keys (%s)",
                      config.fullName().c_str());
    }
    const CacheGeometry geom(configs_.front());
    if (geom.blockBits() == 0) {
        fatal("block size 1 is unsupported (%s)",
              configs_.front().fullName().c_str());
    }
    occsim_assert(num_shards >= 1 && isPowerOfTwo(num_shards) &&
                      num_shards <= geom.numSets() &&
                      num_shards <= kMaxShards,
                  "bad fused shard count %u for %u sets", num_shards,
                  geom.numSets());
    blockBits_ = geom.blockBits();
    numShards_ = num_shards;
    shardBits_ = floorLog2(num_shards);
    grossBytes_.reserve(configs_.size());
    for (const CacheConfig &config : configs_)
        grossBytes_.push_back(CacheGeometry(config).grossBytes());
    passes_.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s)
        passes_.push_back(std::make_unique<Pass>(configs_));
    refs_.assign(num_shards, 0);
}

FusedReplay::~FusedReplay() = default;

void
FusedReplay::run(const PackedRecord *refs, std::size_t n)
{
    occsim_assert(numShards_ == 1,
                  "run() drives an unsharded fused pass; use "
                  "runShard() with %u shards",
                  numShards_);
    OCCSIM_TELEM_STAGE("engine.fused");
    passes_[0]->replay(refs, n);
    passes_[0]->finalize();
    refs_[0] += n;
    OCCSIM_TELEM_COUNT("engine.fused.refs", n * configs_.size());
    OCCSIM_TELEM_COUNT("engine.fused.bytes", n * sizeof(PackedRecord));
}

void
FusedReplay::runShard(std::size_t shard,
                      const ShardedPackedTrace &trace)
{
    occsim_assert(trace.blockBits() == blockBits_ &&
                      trace.shardBits() == shardBits_,
                  "sharded trace (blockBits %u, shardBits %u) does "
                  "not match fused engine (blockBits %u, shardBits "
                  "%u)",
                  trace.blockBits(), trace.shardBits(), blockBits_,
                  shardBits_);
    OCCSIM_TELEM_STAGE("engine.fused");
    const std::size_t n = trace.shardSize(shard);
    passes_[shard]->replay(trace.shardData(shard), n);
    passes_[shard]->finalize();
    refs_[shard] += n;
    OCCSIM_TELEM_COUNT("engine.fused.refs", n * configs_.size());
    OCCSIM_TELEM_COUNT("engine.fused.bytes", n * sizeof(PackedRecord));
}

CacheStats
FusedReplay::mergedStats(std::size_t c) const
{
    const CacheGeometry geom(configs_[c]);
    CacheStats merged(geom.subBlocksPerBlock(),
                      geom.subBlocksPerBlock() *
                          geom.wordsPerSubBlock());
    for (const auto &pass : passes_)
        merged.mergeFrom(pass->stats(c));
    return merged;
}

SweepResult
FusedReplay::result(std::size_t c) const
{
    return summarizeStats(configs_[c], grossBytes_[c],
                          mergedStats(c));
}

std::vector<SweepResult>
FusedReplay::results() const
{
    std::vector<SweepResult> out;
    out.reserve(configs_.size());
    for (std::size_t c = 0; c < configs_.size(); ++c)
        out.push_back(result(c));
    return out;
}

void
ShardTelemetry::accumulate(const FusedReplay &engine)
{
    std::uint64_t lo = engine.shardRefs(0);
    std::uint64_t hi = lo;
    for (std::uint32_t s = 1; s < engine.numShards(); ++s) {
        lo = std::min(lo, engine.shardRefs(s));
        hi = std::max(hi, engine.shardRefs(s));
    }
    maxShardRefs = std::max(maxShardRefs, hi);
    minShardRefs = shardedRuns == 0 ? lo : std::min(minShardRefs, lo);
    maxShards = std::max(maxShards, engine.numShards());
    ++shardedRuns;
}

} // namespace occsim
