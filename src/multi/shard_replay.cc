#include "multi/shard_replay.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "cache/cache_geometry.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

bool
shardEligible(const CacheConfig &config)
{
    // Random replacement draws victims from one Rng shared by every
    // set; PrefetchNextOnMiss allocates in the sequentially-next
    // block, i.e. in another set (and with >1 shard, another shard).
    // A split I/D pair routes by reference kind, not set index, so
    // its two halves see different sub-traces. Either way the run is
    // not set-local. Everything else is: see the header's proof
    // sketch.
    return config.replacement != ReplacementPolicy::Random &&
           config.fetch != FetchPolicy::PrefetchNextOnMiss &&
           config.partition == CachePartition::Unified;
}

ShardMode
shardModeFromEnv()
{
    const char *env = std::getenv("OCCSIM_SHARD");
    if (env == nullptr)
        return ShardMode::Heuristic;
    if (std::strcmp(env, "0") == 0)
        return ShardMode::Off;
    if (std::strcmp(env, "1") == 0)
        return ShardMode::Force;
    warn("ignoring bad OCCSIM_SHARD '%s' (want 0 or 1)", env);
    return ShardMode::Heuristic;
}

std::uint32_t
planShardCount(const CacheConfig &config, unsigned threads)
{
    if (threads < 2 || !shardEligible(config))
        return 1;
    const CacheGeometry geom(config);
    std::uint32_t shards = 1;
    while (shards < threads && shards < kMaxShards)
        shards <<= 1;
    while (shards > geom.numSets())
        shards >>= 1;
    return shards;
}

bool
shouldShard(ShardMode mode, const CacheConfig &config,
            unsigned threads, std::uint64_t refs,
            std::size_t competing_tasks)
{
    if (planShardCount(config, threads) < 2)
        return false;
    switch (mode) {
      case ShardMode::Off:
        return false;
      case ShardMode::Force:
        return true;
      case ShardMode::Heuristic:
        // Shard when one run is long enough to be worth splitting AND
        // the rest of the grid cannot keep the pool busy by itself.
        return refs >= kShardMinRefs && competing_tasks < threads;
    }
    return false;
}

ShardReplay::ShardReplay(const CacheConfig &config,
                         std::uint32_t num_shards)
    : config_(config)
{
    const CacheGeometry geom(config);
    occsim_assert(shardEligible(config),
                  "sharding an ineligible config (%s)",
                  config.fullName().c_str());
    occsim_assert(isPowerOfTwo(num_shards) && num_shards >= 2 &&
                      num_shards <= geom.numSets() &&
                      num_shards <= kMaxShards,
                  "bad shard count %u for %u sets", num_shards,
                  geom.numSets());
    blockBits_ = geom.blockBits();
    shardBits_ = floorLog2(num_shards);
    grossBytes_ = geom.grossBytes();
    caches_.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s)
        caches_.push_back(std::make_unique<Cache>(config));
    refs_.assign(num_shards, 0);
}

void
ShardReplay::runShard(std::size_t shard,
                      const ShardedPackedTrace &trace)
{
    occsim_assert(trace.blockBits() == blockBits_ &&
                      trace.shardBits() == shardBits_,
                  "sharded trace (blockBits %u, shardBits %u) does "
                  "not match engine (blockBits %u, shardBits %u)",
                  trace.blockBits(), trace.shardBits(), blockBits_,
                  shardBits_);
    OCCSIM_TELEM_STAGE("engine.shard");
    const std::size_t n = trace.shardSize(shard);
    Cache &cache = *caches_[shard];
    cache.replayPacked(trace.shardData(shard), n);
    cache.finalizeResidencies();
    refs_[shard] += n;
    OCCSIM_TELEM_COUNT("engine.shard.refs", n);
    OCCSIM_TELEM_COUNT("engine.shard.bytes", n * sizeof(PackedRecord));
}

CacheStats
ShardReplay::mergedStats() const
{
    const CacheGeometry geom(config_);
    CacheStats merged(geom.subBlocksPerBlock(),
                      geom.subBlocksPerBlock() *
                          geom.wordsPerSubBlock());
    for (const auto &cache : caches_)
        merged.mergeFrom(cache->stats());
    return merged;
}

SweepResult
ShardReplay::result() const
{
    return summarizeStats(config_, grossBytes_, mergedStats());
}

void
ShardTelemetry::accumulate(const ShardReplay &engine)
{
    std::uint64_t lo = engine.shardRefs(0);
    std::uint64_t hi = lo;
    for (std::uint32_t s = 1; s < engine.numShards(); ++s) {
        lo = std::min(lo, engine.shardRefs(s));
        hi = std::max(hi, engine.shardRefs(s));
    }
    maxShardRefs = std::max(maxShardRefs, hi);
    minShardRefs = shardedRuns == 0 ? lo : std::min(minShardRefs, lo);
    maxShards = std::max(maxShards, engine.numShards());
    ++shardedRuns;
}

void
ShardTelemetry::accumulate(const ShardTelemetry &other)
{
    if (other.shardedRuns == 0)
        return;
    maxShardRefs = std::max(maxShardRefs, other.maxShardRefs);
    minShardRefs = shardedRuns == 0
                       ? other.minShardRefs
                       : std::min(minShardRefs, other.minShardRefs);
    maxShards = std::max(maxShards, other.maxShards);
    shardedRuns += other.shardedRuns;
}

} // namespace occsim
