/**
 * @file
 * Parallel multi-configuration simulation over shared immutable
 * traces.
 *
 * The sweep workload is embarrassingly parallel: every Cache is fully
 * independent and a VectorTrace, once built, is never mutated. The
 * parallel engine exploits both facts — configurations of one sweep
 * are partitioned dynamically across a thread pool, each worker
 * driving its own caches with a private cursor over one shared
 * `std::shared_ptr<const VectorTrace>`, and suite runs additionally
 * parallelize across traces (supplied by the buildTraceShared cache,
 * so each workload executes the VM exactly once).
 *
 * Determinism guarantee: a cache observes exactly the same reference
 * sequence no matter how the work is scheduled, so every SweepResult
 * is bit-identical to the sequential SweepRunner's. OCCSIM_THREADS=1
 * degenerates to inline sequential execution.
 */

#ifndef OCCSIM_MULTI_PARALLEL_SWEEP_HH
#define OCCSIM_MULTI_PARALLEL_SWEEP_HH

#include <memory>
#include <vector>

#include "multi/sweep_runner.hh"
#include "util/thread_pool.hh"

namespace occsim {

/**
 * Runs many cache configurations over one shared immutable trace,
 * partitioned across a thread pool. Drop-in parallel counterpart of
 * SweepRunner: same construction, same results() contract, same
 * (bit-identical) numbers.
 */
class ParallelSweepRunner
{
  public:
    /**
     * @param configs one cache is instantiated per entry.
     * @param pool pool to run on; nullptr means globalThreadPool().
     */
    explicit ParallelSweepRunner(const std::vector<CacheConfig> &configs,
                                 ThreadPool *pool = nullptr);

    /**
     * Feed up to @p maxRefs references (0 = all) of @p trace to every
     * cache and finalize residencies. Each worker walks the trace
     * with its own cursor; the trace itself is never modified.
     * @return references consumed per cache.
     */
    std::uint64_t run(const std::shared_ptr<const VectorTrace> &trace,
                      std::uint64_t max_refs = 0);

    std::size_t size() const { return caches_.size(); }
    const Cache &cache(std::size_t i) const { return *caches_[i]; }
    Cache &cache(std::size_t i) { return *caches_[i]; }

    /** Summaries in config order (same contract as SweepRunner). */
    std::vector<SweepResult> results() const;

  private:
    ThreadPool *pool_;
    std::vector<std::unique_ptr<Cache>> caches_;
};

/**
 * Run every config over every trace — the full (trace, config) task
 * grid of a suite sweep — in parallel on @p pool (nullptr means
 * globalThreadPool()). @return per-trace result vectors,
 * out[t][c] for traces[t] x configs[c], bit-identical to driving a
 * sequential SweepRunner over each trace.
 */
std::vector<std::vector<SweepResult>>
runSweeps(const std::vector<std::shared_ptr<const VectorTrace>> &traces,
          const std::vector<CacheConfig> &configs,
          ThreadPool *pool = nullptr);

} // namespace occsim

#endif // OCCSIM_MULTI_PARALLEL_SWEEP_HH
