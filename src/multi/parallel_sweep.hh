/**
 * @file
 * Parallel multi-configuration simulation over shared immutable
 * traces.
 *
 * The sweep workload is embarrassingly parallel: every Cache is fully
 * independent and a VectorTrace, once built, is never mutated. The
 * parallel engine exploits both facts — configurations of one sweep
 * are partitioned dynamically across a thread pool, each worker
 * driving its own caches with a private cursor over one shared
 * `std::shared_ptr<const VectorTrace>`, and suite runs additionally
 * parallelize across traces (supplied by the buildTraceShared cache,
 * so each workload executes the VM exactly once).
 *
 * On top of PR 1's parallelism, configurations that are pure per-set
 * LRU stacks (LRU + demand fetch + sub-block == block +
 * write-allocate, see singlePassEligible) are routed to the
 * single-pass SinglePassEngine by default: one engine per (trace,
 * block size) prices every such config in one trace pass per distinct
 * set count, instead of one full pass per config. Among the rest,
 * groups of two or more fusedEligible configs sharing one FusedKey
 * (same effective sets x ways x block plus replacement/write
 * policies — the paper's sub-block and load-forward sweeps) go to the
 * fused group engine (FusedReplay): block-level tag/replacement
 * simulation once per group per trace pass, per-config 64-bit
 * sub-block mask planes for what differs. Everything else — prefetch,
 * Random replacement, fused singletons — goes to the batched replay
 * engine (BatchReplay): the trace is pre-decoded once into a
 * PackedTrace and streamed chunk by chunk through tiles of
 * specialized-kernel caches. SweepEngine::DirectOnly forces plain
 * per-config Cache::access simulation everywhere (used by tests and
 * benchmarks as the reference engine).
 *
 * Determinism guarantee: results are bit-identical to sequential
 * per-config Cache simulation no matter how the work is scheduled and
 * no matter which engine served a config. OCCSIM_THREADS=1
 * degenerates to inline sequential execution.
 */

#ifndef OCCSIM_MULTI_PARALLEL_SWEEP_HH
#define OCCSIM_MULTI_PARALLEL_SWEEP_HH

#include <memory>
#include <vector>

#include "multi/batch_replay.hh"
#include "multi/fused_replay.hh"
#include "multi/shard_replay.hh"
#include "multi/single_pass.hh"
#include "multi/sweep_runner.hh"
#include "util/thread_pool.hh"

namespace occsim {

/** Engine selection policy for parallel sweeps. */
enum class SweepEngine : std::uint8_t {
    /** Single-pass fast path for eligible configs, batched packed
     *  replay for the rest (the default). */
    Auto = 0,
    /** Direct per-config Cache simulation for every config. */
    DirectOnly = 1,
    /**
     * Auto routing plus a runtime differential check: a sampled
     * subset of the optimized-engine configs (single-pass AND
     * batched) is shadow-simulated on the direct Cache engine as
     * extra pool tasks, and after each run() the optimized engine's
     * summaries must match the shadows bit for bit — any divergence
     * is a fatal error naming the config. The belt to occsim-fuzz's
     * suspenders: it validates the routing on the real workload
     * actually being swept, at a bounded (~25% of configs) overhead.
     */
    CrossCheck = 2,
    /**
     * SMARTS-style statistical sampling (multi/sample_replay.hh):
     * systematic measurement units with functional warming between
     * them, reported as per-metric estimates with standard errors
     * and 95% CIs on SweepResult::sampled. NEVER auto-routed — the
     * exact engines stay the default; opting in is the caller
     * declaring that estimates (10-100x cheaper on long traces) are
     * acceptable. Knobs in SweepRequest::sample; incompatible with
     * SweepRequest::probe (no full-trace Cache exists to inspect).
     */
    Sampled = 3,
};

/**
 * Runs many cache configurations over one shared immutable trace,
 * partitioned across a thread pool, reporting results in config
 * order.
 *
 * With SweepEngine::Auto (the default), single-pass eligible configs
 * have no backing Cache — cache(i) panics for them (probe-style
 * callers that need a Cache for every config should construct with
 * SweepEngine::DirectOnly); batched configs keep one, driven through
 * the specialized replay kernels. run() may be called repeatedly; all
 * engines accumulate as if the traces were concatenated.
 */
class ParallelSweepRunner
{
  public:
    /**
     * @param configs one result slot per entry.
     * @param pool pool to run on; nullptr means globalThreadPool().
     * @param engine fast-path policy (Auto routes eligible configs to
     *        the single-pass engine).
     * @param allow_sharding false pins every non-single-pass config
     *        to the batched/direct engines even when OCCSIM_SHARD or
     *        the heuristic would shard it, and also disables fused
     *        group routing (probe callers need a backing Cache per
     *        config; neither engine keeps one).
     */
    explicit ParallelSweepRunner(const std::vector<CacheConfig> &configs,
                                 ThreadPool *pool = nullptr,
                                 SweepEngine engine = SweepEngine::Auto,
                                 bool allow_sharding = true);

    /**
     * Feed up to @p max_refs references (0 = all) of @p trace to
     * every cache/engine and finalize residencies. Each worker walks
     * the trace with its own cursor; the trace itself is never
     * modified.
     *
     * Engine-internal entry point: callers outside the engine layer
     * drive sweeps through runSweep(SweepRequest) in
     * multi/sweep_api.hh, which wraps runners like this one.
     * @return references consumed per config.
     */
    std::uint64_t run(const std::shared_ptr<const VectorTrace> &trace,
                      std::uint64_t max_refs = 0);

    std::size_t size() const { return configs_.size(); }

    /** @return true when config @p i is served by the single-pass
     *  engine (no backing Cache exists). */
    bool fastPathed(std::size_t i) const;

    /** Number of configs served by the single-pass engine. */
    std::size_t fastPathCount() const;

    /** Number of configs served by the batched replay engine (zero
     *  under SweepEngine::DirectOnly). */
    std::size_t batchedCount() const;

    /**
     * Number of configs served by the set-sharded engine. Routing to
     * it happens at the first run() (it depends on the trace length
     * and pool width — see shouldShard), so this is zero before then
     * and sticky afterwards.
     */
    std::size_t shardedCount() const { return shardIndex_.size(); }

    /** @return true when config @p i went to the set-sharded engine
     *  (decided at first run(); no single backing Cache exists). */
    bool sharded(std::size_t i) const;

    /** Number of configs served by fused group engines (routed at
     *  construction — the grouping is trace-independent — and zero
     *  under DirectOnly or allow_sharding == false). */
    std::size_t fusedCount() const { return fusedSlots_.size(); }

    /** @return true when config @p i rides a fused group pass (no
     *  single backing Cache exists). */
    bool fused(std::size_t i) const;

    /** Number of configs served by dedicated split I/D pairs
     *  (every CachePartition::SplitID config, regardless of engine
     *  mode — no batched kernel exists for a routed pair). */
    std::size_t splitCount() const { return splits_.size(); }

    /** @return true when config @p i is simulated as a split I/D
     *  pair (no single backing Cache exists). */
    bool split(std::size_t i) const;

    /** Number of fused groups (each >= 2 configs). */
    std::size_t fusedGroupCount() const { return fused_.size(); }

    /** Fused group @p g's engine (test/bench introspection). */
    const FusedReplay &fusedGroup(std::size_t g) const
    {
        return *fused_[g];
    }

    /** Imbalance summary over this runner's sharded runs (all zeros
     *  when nothing sharded). */
    ShardTelemetry shardTelemetry() const;

    /** Number of optimized-engine configs shadow-verified per run()
     *  (non-zero only under SweepEngine::CrossCheck). */
    std::size_t crossCheckCount() const { return shadowIndex_.size(); }

    /** Backing Cache of config @p i; panics if fastPathed(i). */
    const Cache &cache(std::size_t i) const;
    Cache &cache(std::size_t i);

    /** Summaries in config order. */
    std::vector<SweepResult> results() const;

  private:
    /** Where a config's simulation lives: a Cache outside the
     *  single-pass engines (engine == kRouteDirect; slot into caches_
     *  under DirectOnly, into batch_ otherwise), the set-sharded
     *  engine (engine == kRouteShard; slot into shards_), a fused
     *  group (engine == kRouteFused; slot into fusedSlots_), a split
     *  I/D pair (engine == kRouteSplit; slot into splits_), or a
     *  single-pass engine (engine >= 0; slot into that engine's
     *  config list). */
    struct Route
    {
        std::int32_t engine = -1;
        std::uint32_t slot = 0;
    };
    static constexpr std::int32_t kRouteDirect = -1;
    static constexpr std::int32_t kRouteShard = -2;
    static constexpr std::int32_t kRouteFused = -3;
    static constexpr std::int32_t kRouteSplit = -4;

    /** First-run() routing refinement: move heuristically (or
     *  OCCSIM_SHARD-forced) chosen direct configs from the batched
     *  engine to per-config ShardReplay engines. Sticky: later runs
     *  reuse the same routes. */
    void finalizeRoutes(unsigned threads, std::uint64_t limit);

    ThreadPool *pool_;
    SweepEngine engineMode_;
    bool allowSharding_;
    std::vector<CacheConfig> configs_;
    std::vector<Route> routes_;
    bool routesFinal_ = false;
    /** DirectOnly: caches_[j] simulates configs_[directIndex_[j]]. */
    std::vector<std::unique_ptr<Cache>> caches_;
    /** All non-single-pass config indices (DirectOnly slot order). */
    std::vector<std::size_t> directIndex_;
    /** batch_->cache(j) simulates configs_[batchIndex_[j]]; equals
     *  directIndex_ until finalizeRoutes carves out sharded configs. */
    std::vector<std::size_t> batchIndex_;
    /** shards_[k] simulates configs_[shardIndex_[k]]. */
    std::vector<std::size_t> shardIndex_;
    /** fused_[g] simulates configs_[fusedIndex_[g][k]] as member k. */
    std::vector<std::vector<std::size_t>> fusedIndex_;
    std::vector<std::unique_ptr<FusedReplay>> fused_;
    /** Flat Route::slot -> (group, member) for fused configs. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> fusedSlots_;
    /** Auto/CrossCheck: batched replay engine over the non-eligible,
     *  non-sharded configs (same slot order as batchIndex_). */
    std::unique_ptr<BatchReplay> batch_;
    /** Set-sharded engines (one per sharded config). */
    std::vector<std::unique_ptr<ShardReplay>> shards_;
    /** splits_[k] simulates configs_[splitIndex_[k]] as an I/D pair. */
    std::vector<std::size_t> splitIndex_;
    std::vector<std::unique_ptr<SplitCache>> splits_;
    /** One engine per distinct eligible block size. */
    std::vector<std::unique_ptr<SinglePassEngine>> engines_;
    /** engineIndex_[e][k] = config index of engines_[e]'s k-th. */
    std::vector<std::vector<std::size_t>> engineIndex_;
    /** CrossCheck only: sampled optimized-engine config indices with
     *  a shadow direct Cache each (shadowCaches_[s] simulates
     *  configs_[shadowIndex_[s]]). */
    std::vector<std::size_t> shadowIndex_;
    std::vector<std::unique_ptr<Cache>> shadowCaches_;
};

} // namespace occsim

#endif // OCCSIM_MULTI_PARALLEL_SWEEP_HH
