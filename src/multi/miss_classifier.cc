#include "multi/miss_classifier.hh"

#include <algorithm>

#include "stats/stats.hh"
#include "util/logging.hh"

namespace occsim {

double
MissBreakdown::missRatio() const
{
    return ratio(misses, refs);
}

double
MissBreakdown::conflictShare() const
{
    return ratio(conflict, misses);
}

MissClassifier::MissClassifier(const CacheConfig &config)
    : cache_(config),
      shadowCapacity_(config.netSize / config.blockSize),
      blockBits_(floorLog2(config.blockSize))
{
    occsim_assert(config.subBlockSize == config.blockSize,
                  "classification requires sub-block == block");
    occsim_assert(config.replacement == ReplacementPolicy::LRU,
                  "classification requires LRU");
    shadow_.reserve(shadowCapacity_);
    everSeen_.reserve(1 << 14);
}

void
MissClassifier::process(Addr addr)
{
    ++breakdown_.refs;
    const Addr block = addr >> blockBits_;

    // Fully-associative shadow: find, and note whether it hit.
    bool shadow_hit = false;
    for (std::size_t i = shadow_.size(); i-- > 0;) {
        if (shadow_[i] == block) {
            shadow_.erase(shadow_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            shadow_hit = true;
            break;
        }
    }
    shadow_.push_back(block);
    if (shadow_.size() > shadowCapacity_)
        shadow_.erase(shadow_.begin());

    // The cache under study (placement-only: treat as a read).
    const AccessOutcome outcome =
        cache_.access(MemRef{addr, RefKind::DataRead,
                             static_cast<std::uint8_t>(
                                 cache_.config().wordSize)});
    if (outcome == AccessOutcome::Hit)
        return;

    ++breakdown_.misses;
    if (everSeen_.insert(block).second)
        ++breakdown_.compulsory;
    else if (!shadow_hit)
        ++breakdown_.capacity;
    else
        ++breakdown_.conflict;
}

void
MissClassifier::processTrace(const VectorTrace &trace)
{
    for (const MemRef &ref : trace.refs())
        process(ref.addr);
}

} // namespace occsim
