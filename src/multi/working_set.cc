#include "multi/working_set.hh"

#include <algorithm>
#include <unordered_set>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace occsim {

WorkingSetAnalyzer::WorkingSetAnalyzer(std::uint32_t block_size,
                                       Select select)
    : blockSize_(block_size), select_(select)
{
    occsim_assert(isPowerOfTwo(block_size),
                  "block size must be a power of two");
}

std::vector<WorkingSetPoint>
WorkingSetAnalyzer::profile(
    const VectorTrace &trace,
    const std::vector<std::uint64_t> &windows) const
{
    const unsigned shift = floorLog2(blockSize_);
    std::vector<WorkingSetPoint> points;
    for (const std::uint64_t window : windows) {
        occsim_assert(window > 0, "window must be positive");
        WorkingSetPoint point;
        point.window = window;

        std::uint64_t windows_done = 0;
        std::uint64_t sum = 0;
        std::unordered_set<Addr> blocks;
        std::uint64_t in_window = 0;
        for (const MemRef &ref : trace.refs()) {
            if (select_ == Select::InstructionsOnly &&
                !ref.isInstruction()) {
                continue;
            }
            if (select_ == Select::DataOnly && ref.isInstruction())
                continue;
            blocks.insert(ref.addr >> shift);
            if (++in_window == window) {
                sum += blocks.size();
                point.maxBlocks =
                    std::max<std::uint64_t>(point.maxBlocks,
                                            blocks.size());
                blocks.clear();
                in_window = 0;
                ++windows_done;
            }
        }
        if (windows_done != 0) {
            point.meanBlocks = static_cast<double>(sum) /
                               static_cast<double>(windows_done);
            point.meanBytes = point.meanBlocks * blockSize_;
        }
        points.push_back(point);
    }
    return points;
}

std::uint64_t
WorkingSetAnalyzer::suggestedCacheBytes(const VectorTrace &trace,
                                        std::uint64_t window) const
{
    const auto points = profile(trace, {window});
    const double bytes = points.front().meanBytes;
    std::uint64_t size = blockSize_;
    while (static_cast<double>(size) < bytes)
        size *= 2;
    return size;
}

} // namespace occsim
