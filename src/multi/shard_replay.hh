/**
 * @file
 * Set-sharded intra-trace replay — engine 5 of the sweep stack.
 *
 * All other engines parallelize ACROSS (trace, config) tasks; one
 * huge trace on one config is strictly serial for them. This engine
 * splits that single run: under any set-local policy combination the
 * cache sets never interact, so the trace can be partitioned by the
 * low bits of the block address (ShardedPackedTrace) and each shard
 * replayed on its own private Cache by a different worker. Every
 * CacheStats field is an integer sum over the references that
 * produced it, so summing the per-shard stats and feeding the totals
 * through summarizeStats() reproduces the unsharded run bit for bit.
 *
 * Routing predicate (shardEligible): a config may be sharded iff its
 * behaviour is set-local, i.e. what happens in one set never depends
 * on references to other sets. Two policies break that:
 *
 *  - Random replacement: all sets of one cache share a single Rng
 *    stream, so the victim chosen in set A depends on how many
 *    replacements other sets performed before it — a global
 *    interleaving, destroyed by sharding.
 *  - PrefetchNextOnMiss: a miss on the last sub-block of a block
 *    prefetches into the sequentially NEXT block, which lives in the
 *    next set — with more than one shard that allocation would land
 *    in a different shard's cache (the instruction-buffer /
 *    remote-PC style next-line interaction).
 *
 * Demand and load-forward fetches only ever move data within the
 * missed block, LRU/FIFO order is per-set state, and write policies
 * touch only the accessed frame, so everything else is shardable.
 * Tests prove both directions of this predicate by force-sharding an
 * ineligible config and exhibiting the divergence.
 */

#ifndef OCCSIM_MULTI_SHARD_REPLAY_HH
#define OCCSIM_MULTI_SHARD_REPLAY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "multi/sweep_runner.hh"
#include "trace/packed_trace.hh"

namespace occsim {

/** True when @p config's per-set behaviour is independent of other
 *  sets, so a set-sharded replay merges bit-identically (see the
 *  file comment for the proof sketch). */
bool shardEligible(const CacheConfig &config);

/** OCCSIM_SHARD override: 0 = never shard, 1 = shard every eligible
 *  run, unset = heuristic. */
enum class ShardMode : std::uint8_t { Heuristic, Off, Force };

/** Parse OCCSIM_SHARD (warning + Heuristic on a bad value). */
ShardMode shardModeFromEnv();

/** Upper bound on shards per run: bounds the per-run Cache
 *  duplication (each shard owns a full frame array). */
inline constexpr std::uint32_t kMaxShards = 64;

/** Sharding only pays once each worker gets a meaty sub-trace; below
 *  this many references the partition + merge overhead dominates. */
inline constexpr std::uint64_t kShardMinRefs = 1u << 18;

/**
 * Number of shards a sharded run of @p config would use on
 * @p threads workers: the smallest power of two >= threads, clamped
 * to the set count (a shard must own whole sets) and kMaxShards.
 * Returns 1 — no sharding possible — for ineligible configs and for
 * single-set (fully associative) geometries.
 */
std::uint32_t planShardCount(const CacheConfig &config,
                             unsigned threads);

/**
 * Auto-routing heuristic: shard one (trace, config) run iff the
 * override mode or the workload shape says so. @p competing_tasks is
 * the number of schedulable unsharded tasks the surrounding sweep
 * already has — when the task grid alone can keep every worker busy,
 * task parallelism is cheaper than sharding.
 */
bool shouldShard(ShardMode mode, const CacheConfig &config,
                 unsigned threads, std::uint64_t refs,
                 std::size_t competing_tasks);

/**
 * One sharded (trace, config) run: numShards private Caches, each
 * replaying one shard of a ShardedPackedTrace. runShard(s, ...) only
 * touches shard s's cache and counter, so distinct shards are safe
 * to run concurrently with no synchronization; merging happens
 * single-threaded afterwards.
 */
class ShardReplay
{
  public:
    /** @p num_shards must be planShardCount-valid: a power of two in
     *  [2, min(numSets, kMaxShards)], and @p config shardEligible. */
    ShardReplay(const CacheConfig &config, std::uint32_t num_shards);

    const CacheConfig &config() const { return config_; }
    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(caches_.size());
    }
    std::uint32_t shardBits() const { return shardBits_; }
    std::uint32_t blockBits() const { return blockBits_; }

    /** Replay shard @p shard of @p trace (which must have been built
     *  with this engine's blockBits/shardBits) and finalize its
     *  residencies, exactly like one Cache::run pass. */
    void runShard(std::size_t shard, const ShardedPackedTrace &trace);

    /** References replayed by @p shard so far (imbalance telemetry). */
    std::uint64_t shardRefs(std::size_t shard) const
    {
        return refs_[shard];
    }

    /** Sum of the per-shard statistics (exact integer merge). */
    CacheStats mergedStats() const;

    /** Summary of the merged run — bit-identical to an unsharded
     *  replay of the same records. */
    SweepResult result() const;

  private:
    CacheConfig config_;
    std::uint32_t blockBits_;
    std::uint32_t shardBits_;
    std::uint64_t grossBytes_;
    std::vector<std::unique_ptr<Cache>> caches_;
    std::vector<std::uint64_t> refs_;
};

/**
 * Shard-imbalance summary across the sharded runs of one sweep. A
 * skewed set distribution (hot sets) shows up as maxShardRefs >>
 * minShardRefs: one worker drags the merge barrier while others
 * idle. Surfaced through the RunManifest so occsim-report makes the
 * skew visible.
 */
struct ShardTelemetry
{
    std::size_t shardedRuns = 0;   ///< (trace, config) runs sharded
    std::uint32_t maxShards = 0;   ///< largest shard count used
    std::uint64_t maxShardRefs = 0;  ///< fullest shard sub-trace
    std::uint64_t minShardRefs = 0;  ///< emptiest shard sub-trace

    /** Fold one finished sharded run into the summary. */
    void accumulate(const ShardReplay &engine);
    /** Fold one finished sharded fused-group run (counts as ONE
     *  sharded run however many configs it priced). Defined in
     *  multi/fused_replay.cc. */
    void accumulate(const class FusedReplay &engine);
    /** Fold another summary into this one. */
    void accumulate(const ShardTelemetry &other);
};

} // namespace occsim

#endif // OCCSIM_MULTI_SHARD_REPLAY_HH
