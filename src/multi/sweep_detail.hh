/**
 * @file
 * Internal helpers shared by the sweep engine implementations
 * (parallel_sweep.cc) and the unified sweep API (sweep_api.cc). Not
 * part of the supported surface — include src/occsim.hh instead.
 */

#ifndef OCCSIM_MULTI_SWEEP_DETAIL_HH
#define OCCSIM_MULTI_SWEEP_DETAIL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "multi/single_pass.hh"
#include "util/thread_pool.hh"

namespace occsim::sweep_detail {

inline ThreadPool &
poolOrGlobal(ThreadPool *pool)
{
    return pool != nullptr ? *pool : globalThreadPool();
}

/**
 * Partition config indices for the Auto engine policy: eligible
 * configs grouped by block size (first-appearance order, so the
 * partition is deterministic), the rest listed for direct simulation.
 */
struct ConfigPartition
{
    std::vector<std::size_t> direct;
    std::vector<std::uint32_t> groupBlockSize;
    std::vector<std::vector<std::size_t>> groups;
};

inline ConfigPartition
partitionConfigs(const std::vector<CacheConfig> &configs,
                 SweepEngine engine)
{
    ConfigPartition part;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (engine == SweepEngine::DirectOnly ||
            !singlePassEligible(configs[i])) {
            part.direct.push_back(i);
            continue;
        }
        const std::uint32_t block = configs[i].blockSize;
        std::size_t g = part.groups.size();
        for (std::size_t k = 0; k < part.groupBlockSize.size(); ++k) {
            if (part.groupBlockSize[k] == block) {
                g = k;
                break;
            }
        }
        if (g == part.groups.size()) {
            part.groupBlockSize.push_back(block);
            part.groups.emplace_back();
        }
        part.groups[g].push_back(i);
    }
    return part;
}

inline std::vector<CacheConfig>
selectConfigs(const std::vector<CacheConfig> &configs,
              const std::vector<std::size_t> &indices)
{
    std::vector<CacheConfig> out;
    out.reserve(indices.size());
    for (const std::size_t i : indices)
        out.push_back(configs[i]);
    return out;
}

} // namespace occsim::sweep_detail

#endif // OCCSIM_MULTI_SWEEP_DETAIL_HH
