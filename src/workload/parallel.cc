#include "workload/parallel.hh"

#include "util/logging.hh"
#include "util/random.hh"
#include "util/str.hh"

namespace occsim {

namespace {

// Address-space layout shared by the generators. Code is per-core
// (private ifetch streams); the data segments below 0x4000 are the
// shared structures each workload communicates through.
constexpr Addr kCodeBase = 0x10000;
constexpr Addr kCodeSpan = 0x1000;   ///< per-core code bytes
constexpr Addr kSharedBase = 0x1000; ///< locks, counters, queue slots
constexpr Addr kPrivateBase = 0x40000;
constexpr Addr kPrivateSpan = 0x4000; ///< per-core private data bytes

/** One core's scripted stream under construction. */
struct CoreScript
{
    std::vector<MemRef> refs;
    Addr pc;
    std::uint32_t wordSize;

    void ifetch()
    {
        refs.push_back(MemRef{pc, RefKind::Ifetch,
                              static_cast<std::uint8_t>(wordSize)});
        pc += wordSize;
    }
    void read(Addr addr)
    {
        ifetch();
        refs.push_back(MemRef{addr, RefKind::DataRead,
                              static_cast<std::uint8_t>(wordSize)});
    }
    void write(Addr addr)
    {
        ifetch();
        refs.push_back(MemRef{addr, RefKind::DataWrite,
                              static_cast<std::uint8_t>(wordSize)});
    }
};

CoreScript
makeScript(std::uint32_t core, std::uint32_t word_size)
{
    CoreScript script;
    script.pc = kCodeBase + core * kCodeSpan;
    script.wordSize = word_size;
    return script;
}

/** Wrap the per-core pc within its private code span (keeps the
 *  ifetch stream looping like a hot kernel instead of marching off
 *  to infinity). */
void
wrapPc(CoreScript &script, std::uint32_t core)
{
    const Addr base = kCodeBase + core * kCodeSpan;
    if (script.pc >= base + kCodeSpan)
        script.pc = base;
}

} // namespace

const char *
parallelWorkloadName(ParallelWorkloadKind kind)
{
    switch (kind) {
      case ParallelWorkloadKind::SharedQueue:
        return "shared-queue";
      case ParallelWorkloadKind::PartitionedSum:
        return "partitioned-sum";
      case ParallelWorkloadKind::ProducerConsumerRing:
        return "producer-consumer";
    }
    return "unknown";
}

VectorTrace
interleaveCoreStreams(const std::vector<std::vector<MemRef>> &streams,
                      std::uint64_t seed, const std::string &name)
{
    occsim_assert(!streams.empty(), "interleaving zero streams");
    occsim_assert(streams.size() <= 255,
                  "core id must fit MemRef::core");
    Rng rng(seed);
    VectorTrace trace(name);
    std::size_t total = 0;
    for (const std::vector<MemRef> &stream : streams)
        total += stream.size();
    trace.reserve(total);

    std::vector<std::size_t> cursor(streams.size(), 0);
    std::vector<std::uint32_t> live;
    live.reserve(streams.size());
    for (std::uint32_t c = 0; c < streams.size(); ++c) {
        if (!streams[c].empty())
            live.push_back(c);
    }
    while (!live.empty()) {
        const std::size_t pick = rng.below(live.size());
        const std::uint32_t core = live[pick];
        MemRef ref = streams[core][cursor[core]++];
        ref.core = static_cast<std::uint8_t>(core);
        trace.append(ref);
        if (cursor[core] == streams[core].size()) {
            live[pick] = live.back();
            live.pop_back();
        }
    }
    return trace;
}

VectorTrace
makeSharedQueueTrace(const ParallelWorkloadParams &params)
{
    const std::uint32_t ws = params.wordSize;
    const Addr lock_addr = kSharedBase;
    const Addr head_addr = kSharedBase + ws;
    const Addr items_base = kSharedBase + 0x100;
    constexpr std::uint32_t kItems = 64;
    constexpr std::uint32_t kItemWords = 8;

    Rng rng(params.seed);
    std::vector<std::vector<MemRef>> streams(params.cores);
    for (std::uint32_t core = 0; core < params.cores; ++core) {
        Rng core_rng(rng.next());
        CoreScript script = makeScript(core, ws);
        while (script.refs.size() < params.refsPerCore) {
            // Acquire the queue lock, pop the head index, release.
            script.read(lock_addr);
            script.write(lock_addr);
            script.read(head_addr);
            script.write(head_addr);
            // Process one item: read its words, write the first two
            // back (the migratory pattern — the next core to pop
            // this slot reads data we dirtied).
            const Addr item = items_base +
                              static_cast<Addr>(
                                  core_rng.below(kItems)) *
                                  kItemWords * ws;
            for (std::uint32_t w = 0; w < kItemWords; ++w)
                script.read(item + w * ws);
            script.write(item);
            script.write(item + ws);
            wrapPc(script, core);
        }
        streams[core] = std::move(script.refs);
    }
    return interleaveCoreStreams(
        streams, rng.next(),
        strfmt("shared-queue-%uc", params.cores));
}

VectorTrace
makePartitionedSumTrace(const ParallelWorkloadParams &params)
{
    const std::uint32_t ws = params.wordSize;
    // All result words live in one block-sized span: result[c] is
    // adjacent to result[c +- 1], so independent accumulations
    // false-share one block.
    const Addr results_base = kSharedBase;

    Rng rng(params.seed);
    std::vector<std::vector<MemRef>> streams(params.cores);
    for (std::uint32_t core = 0; core < params.cores; ++core) {
        CoreScript script = makeScript(core, ws);
        const Addr slice = kPrivateBase + core * kPrivateSpan;
        const Addr result = results_base + core * ws;
        Addr cursor = slice;
        while (script.refs.size() < params.refsPerCore) {
            // Stream four input words from the private slice, then
            // bump the shared-block accumulator.
            for (std::uint32_t w = 0; w < 4; ++w) {
                script.read(cursor);
                cursor += ws;
                if (cursor >= slice + kPrivateSpan)
                    cursor = slice;
            }
            script.read(result);
            script.write(result);
            wrapPc(script, core);
        }
        streams[core] = std::move(script.refs);
    }
    return interleaveCoreStreams(
        streams, rng.next(),
        strfmt("partitioned-sum-%uc", params.cores));
}

VectorTrace
makeProducerConsumerTrace(const ParallelWorkloadParams &params)
{
    const std::uint32_t ws = params.wordSize;
    const Addr head_addr = kSharedBase;
    const Addr ring_base = kSharedBase + 0x100;
    constexpr std::uint32_t kSlots = 32;
    constexpr std::uint32_t kSlotWords = 4;

    Rng rng(params.seed);
    std::vector<std::vector<MemRef>> streams(params.cores);
    for (std::uint32_t core = 0; core < params.cores; ++core) {
        CoreScript script = makeScript(core, ws);
        std::uint32_t slot = 0;
        while (script.refs.size() < params.refsPerCore) {
            const Addr slot_addr =
                ring_base + static_cast<Addr>(slot) * kSlotWords * ws;
            if (core == 0) {
                // Producer: fill the slot, publish the head.
                for (std::uint32_t w = 0; w < kSlotWords; ++w)
                    script.write(slot_addr + w * ws);
                script.read(head_addr);
                script.write(head_addr);
            } else {
                // Consumer: poll the head, read the slot.
                script.read(head_addr);
                for (std::uint32_t w = 0; w < kSlotWords; ++w)
                    script.read(slot_addr + w * ws);
            }
            slot = (slot + 1) % kSlots;
            wrapPc(script, core);
        }
        streams[core] = std::move(script.refs);
    }
    return interleaveCoreStreams(
        streams, rng.next(),
        strfmt("producer-consumer-%uc", params.cores));
}

VectorTrace
makeParallelTrace(ParallelWorkloadKind kind,
                  const ParallelWorkloadParams &params)
{
    switch (kind) {
      case ParallelWorkloadKind::SharedQueue:
        return makeSharedQueueTrace(params);
      case ParallelWorkloadKind::PartitionedSum:
        return makePartitionedSumTrace(params);
      case ParallelWorkloadKind::ProducerConsumerRing:
        return makeProducerConsumerTrace(params);
    }
    panic("bad parallel workload kind %d", static_cast<int>(kind));
}

std::vector<VectorTrace>
makeParallelSuite(const ParallelWorkloadParams &params)
{
    std::vector<VectorTrace> traces;
    traces.push_back(makeSharedQueueTrace(params));
    traces.push_back(makePartitionedSumTrace(params));
    traces.push_back(makeProducerConsumerTrace(params));
    return traces;
}

} // namespace occsim
