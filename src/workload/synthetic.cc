#include "workload/synthetic.hh"

#include "util/logging.hh"

namespace occsim {

SyntheticSource::SyntheticSource(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    occsim_assert(params_.wordSize == 2 || params_.wordSize == 4,
                  "word size must be 2 or 4");
    occsim_assert(params_.codeSize >= 64 && params_.dataSize >= 64,
                  "code/data regions too small");
    reset();
}

void
SyntheticSource::reset()
{
    rng_.seed(params_.seed);
    pc_ = params_.codeBase;
    scanPtr_ = params_.dataBase;
    stackPtr_ = params_.stackBase;
}

Addr
SyntheticSource::alignWord(Addr addr) const
{
    return addr & ~(params_.wordSize - 1);
}

MemRef
SyntheticSource::nextIfetch()
{
    const auto &p = params_;
    MemRef ref{alignWord(pc_), RefKind::Ifetch,
               static_cast<std::uint8_t>(p.wordSize)};

    if (rng_.chance(p.branchProb)) {
        if (rng_.chance(p.branchLocalProb)) {
            // Loop-like branch: short, biased backward (2:1).
            const std::int64_t span = p.loopSpan;
            std::int64_t delta = rng_.between(1, span);
            if (!rng_.chance(1.0 / 3.0))
                delta = -delta;
            std::int64_t target =
                static_cast<std::int64_t>(pc_) + delta;
            const std::int64_t lo = p.codeBase;
            const std::int64_t hi = p.codeBase + p.codeSize - p.wordSize;
            if (target < lo)
                target = lo;
            if (target > hi)
                target = hi;
            pc_ = static_cast<Addr>(target);
        } else {
            // Far jump: call or long branch anywhere in the code.
            pc_ = p.codeBase +
                  static_cast<Addr>(rng_.below(p.codeSize));
        }
    } else {
        pc_ += p.wordSize;
        if (pc_ >= p.codeBase + p.codeSize)
            pc_ = p.codeBase;
    }
    return ref;
}

MemRef
SyntheticSource::nextData()
{
    const auto &p = params_;
    Addr addr;
    const double region = rng_.uniform();
    if (region < p.dataStackProb) {
        // Stack window random walk around the stack pointer.
        const std::int64_t offset =
            rng_.between(0, static_cast<std::int64_t>(p.stackWindow) -
                                p.wordSize);
        addr = p.stackBase - static_cast<Addr>(offset);
        if (rng_.chance(0.05)) {
            stackPtr_ = p.stackBase -
                        static_cast<Addr>(rng_.below(p.stackWindow));
        }
    } else if (region < p.dataStackProb + p.dataScanProb) {
        // Sequential scan with occasional restart (array sweeps).
        addr = scanPtr_;
        scanPtr_ += p.wordSize;
        if (scanPtr_ >= p.dataBase + p.dataSize ||
            rng_.chance(p.scanRestartProb)) {
            scanPtr_ = p.dataBase +
                       static_cast<Addr>(rng_.below(p.dataSize));
        }
    } else {
        // Uniform reference over the data working set.
        addr = p.dataBase + static_cast<Addr>(rng_.below(p.dataSize));
    }

    const RefKind kind = rng_.chance(p.writeFraction)
                             ? RefKind::DataWrite
                             : RefKind::DataRead;
    return MemRef{alignWord(addr), kind,
                  static_cast<std::uint8_t>(p.wordSize)};
}

bool
SyntheticSource::next(MemRef &ref)
{
    ref = rng_.chance(params_.ifetchFraction) ? nextIfetch()
                                              : nextData();
    return true;
}

VectorTrace
makeSyntheticTrace(const SyntheticParams &params, std::uint64_t refs,
                   const std::string &name)
{
    SyntheticSource source(params);
    VectorTrace trace(name);
    MemRef ref;
    for (std::uint64_t i = 0; i < refs; ++i) {
        source.next(ref);
        trace.append(ref);
    }
    return trace;
}

} // namespace occsim
