/**
 * @file
 * Parallel workload generators: interleaved per-core MemRef streams
 * for the coherent multi-cache scenarios.
 *
 * Each generator scripts one core's references (with shared addresses
 * where the workload shares data) and then interleaves the per-core
 * streams with a seeded weighted-random scheduler, stamping
 * MemRef::core on every record. The interleaving is fully determined
 * by ParallelWorkloadParams::seed — two runs with the same params
 * produce byte-identical traces, which the coherency fuzzer and the
 * result cache both rely on.
 *
 * Three sharing patterns, chosen to exercise the MESI protocol's
 * distinct traffic sources:
 *
 *  - Shared work queue: every core loops on pop-from-shared-head
 *    (read+write of the lock and head words — upgrade and
 *    invalidation traffic) and then processes a queue item that the
 *    previous owner wrote (migratory sharing — cache-to-cache
 *    transfers and snoop flushes).
 *  - Core-partitioned matrix sum: each core streams over a private
 *    slice (no sharing on the inputs) but accumulates into adjacent
 *    result words that share one block (false sharing — upgrade
 *    storms with no true communication).
 *  - Producer/consumer ring: core 0 writes ring slots and publishes
 *    a head counter; the other cores poll the counter and read the
 *    slots (one-to-many read sharing of dirty data).
 */

#ifndef OCCSIM_WORKLOAD_PARALLEL_HH
#define OCCSIM_WORKLOAD_PARALLEL_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace occsim {

/** Shape of one parallel workload trace. */
struct ParallelWorkloadParams
{
    std::uint32_t cores = 2;
    /** References generated per core (total trace length is roughly
     *  cores * refsPerCore). */
    std::uint64_t refsPerCore = 4096;
    std::uint32_t wordSize = 2;
    /** Interleaving (and per-core jitter) seed. */
    std::uint64_t seed = 1;
};

/** The three generators, by name, for sweeping over all of them. */
enum class ParallelWorkloadKind : std::uint8_t {
    SharedQueue = 0,
    PartitionedSum = 1,
    ProducerConsumerRing = 2,
};

const char *parallelWorkloadName(ParallelWorkloadKind kind);

VectorTrace makeSharedQueueTrace(const ParallelWorkloadParams &params);
VectorTrace
makePartitionedSumTrace(const ParallelWorkloadParams &params);
VectorTrace
makeProducerConsumerTrace(const ParallelWorkloadParams &params);

/** Dispatch by kind. */
VectorTrace makeParallelTrace(ParallelWorkloadKind kind,
                              const ParallelWorkloadParams &params);

/** All three kinds, in enum order. */
std::vector<VectorTrace>
makeParallelSuite(const ParallelWorkloadParams &params);

/**
 * Deterministically interleave per-core streams into one trace,
 * stamping MemRef::core: each step picks a non-exhausted core with a
 * seeded Rng and appends its next reference. Exposed for tests and
 * custom workloads.
 */
VectorTrace
interleaveCoreStreams(const std::vector<std::vector<MemRef>> &streams,
                      std::uint64_t seed, const std::string &name);

} // namespace occsim

#endif // OCCSIM_WORKLOAD_PARALLEL_HH
