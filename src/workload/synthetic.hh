/**
 * @file
 * A parameterized synthetic reference generator.
 *
 * The VM suites (src/vm, src/workload/suites.hh) are the primary
 * workload source because they carry real program structure; this
 * generator complements them with a *controllable* locality model for
 * calibration sweeps, property tests, and experiments that need to
 * vary one locality dimension at a time (something no real program
 * permits).
 *
 * Model: an instruction stream of sequential runs broken by branches
 * (mostly short backward "loop" branches, occasionally far jumps) is
 * interleaved with data references drawn from three generators —
 * a stack window near a moving stack pointer, sequential scan
 * pointers, and uniform references over a working set.
 */

#ifndef OCCSIM_WORKLOAD_SYNTHETIC_HH
#define OCCSIM_WORKLOAD_SYNTHETIC_HH

#include <cstdint>

#include "trace/trace.hh"
#include "util/random.hh"

namespace occsim {

/** Tunable locality parameters for SyntheticSource. */
struct SyntheticParams
{
    std::uint32_t wordSize = 2;

    Addr codeBase = 0x0100;
    std::uint32_t codeSize = 8 * 1024;   ///< bytes of code
    Addr dataBase = 0x4000;
    std::uint32_t dataSize = 16 * 1024;  ///< bytes of data working set
    Addr stackBase = 0xF000;
    std::uint32_t stackWindow = 256;     ///< bytes of hot stack

    double ifetchFraction = 0.62;   ///< fraction of refs that fetch code
    double writeFraction = 0.30;    ///< writes among data references
    double branchProb = 0.18;       ///< per-ifetch probability of branch
    double branchLocalProb = 0.85;  ///< branch stays within loopSpan
    std::uint32_t loopSpan = 96;    ///< bytes: local branch distance

    double dataStackProb = 0.35;    ///< data ref hits the stack window
    double dataScanProb = 0.35;     ///< data ref continues a scan
    double scanRestartProb = 0.02;  ///< per-scan-ref restart chance

    std::uint64_t seed = 42;
};

/** Infinite synthetic reference stream (rewindable: reseeds). */
class SyntheticSource : public TraceSource
{
  public:
    explicit SyntheticSource(const SyntheticParams &params);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return true; }
    void reset() override;
    std::string name() const override { return "synthetic"; }

    const SyntheticParams &params() const { return params_; }

  private:
    Addr alignWord(Addr addr) const;
    MemRef nextIfetch();
    MemRef nextData();

    SyntheticParams params_;
    Rng rng_;
    Addr pc_;
    Addr scanPtr_;
    Addr stackPtr_;
};

/** Generate @p refs references into a VectorTrace. */
VectorTrace makeSyntheticTrace(const SyntheticParams &params,
                               std::uint64_t refs,
                               const std::string &name = "synthetic");

} // namespace occsim

#endif // OCCSIM_WORKLOAD_SYNTHETIC_HH
