#include "workload/suites.hh"

#include <cstdlib>
#include <future>
#include <mutex>
#include <unordered_map>

#include "obs/manifest.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

namespace occsim {

namespace {

WorkloadSpec
spec(const ArchProfile &profile, std::string name, std::string desc,
     std::string program_id, std::function<std::string()> make_source)
{
    WorkloadSpec out;
    out.name = std::move(name);
    out.description = std::move(desc);
    out.programId = std::move(program_id);
    out.makeSource = std::move(make_source);
    out.profile = profile;
    return out;
}

} // namespace

Suite
pdp11Suite()
{
    const ArchProfile profile = archProfile(Arch::PDP11);
    Suite suite{profile, {}};
    suite.traces = {
        spec(profile, "OPSYS", "C: toy operating system",
             "linkedlist(1024,400,f16)",
             [] { return progLinkedList(1024, 400, 16); }),
        spec(profile, "PLOT", "Fortran: printer plotter program",
             "matmul(40)", [] { return progMatMul(40); }),
        spec(profile, "SIMP", "Fortran: pipeline simulation program",
             "queuesim(100000,256,f16)",
             [] { return progQueueSim(100000, 256, 16); }),
        spec(profile, "TRACE", "PDP-11 assembly: tracing program",
             "lexer(6144,8,f16)", [] { return progLexer(6144, 8, 16); }),
        spec(profile, "ROFF",
             "PDP-11 assembly: text output and formatting program",
             "textformat(6144,60,8,f16)",
             [] { return progTextFormat(6144, 60, 8, 16); }),
        spec(profile, "ED", "C: text editor",
             "editor(4096,20000,f16)",
             [] { return progEditor(4096, 20000, 16); }),
    };
    return suite;
}

Suite
z8000Suite()
{
    const ArchProfile profile = archProfile(Arch::Z8000);
    Suite suite{profile, {}};
    suite.traces = {
        spec(profile, "OD",
             "C: Unix utility for dumping files in ASCII",
             "wordcount(4096,12,f8)",
             [] { return progWordCount(4096, 12, 8); }),
        spec(profile, "GREP", "C: Unix utility for string searching",
             "stringsearch(3072,6,8)",
             [] { return progStringSearch(3072, 6, 8); }),
        spec(profile, "SORT", "C: Unix utility for sorting",
             "quicksort(2048,f8)", [] { return progQuickSort(2048, 8); }),
        spec(profile, "LS", "C: Unix utility for listing files",
             "bubblesort(256)", [] { return progBubbleSort(256); }),
        spec(profile, "NROFF",
             "C: Unix utility for formatting text files",
             "textformat(4096,72,8,f8)",
             [] { return progTextFormat(4096, 72, 8, 8); }),
    };
    return suite;
}

Suite
z8000CompilerSuite()
{
    const ArchProfile profile = archProfile(Arch::Z8000);
    Suite suite{profile, {}};
    suite.traces = {
        spec(profile, "CPP", "C: first phase of C compiler",
             "lexer(4096,8,f8)", [] { return progLexer(4096, 8, 8); }),
        spec(profile, "C1", "C: second phase of C compiler",
             "bst(512,4096,f8)", [] { return progBst(512, 4096, 8); }),
        spec(profile, "C2", "C: third phase of C compiler",
             "hashtable(6,512,8192,f8)",
             [] { return progHashTable(6, 512, 8192, 8); }),
    };
    return suite;
}

Suite
vax11Suite()
{
    const ArchProfile profile = archProfile(Arch::VAX11);
    Suite suite{profile, {}};
    suite.traces = {
        spec(profile, "spice", "Fortran: circuit simulation",
             "matmul(56)", [] { return progMatMul(56); }),
        spec(profile, "otmdl", "Pascal: constructs LR(0) parser",
             "bst(4096,8192,f32)",
             [] { return progBst(4096, 8192, 32); }),
        spec(profile, "sedx", "C: stream editor",
             "editor(8192,40000,f32)",
             [] { return progEditor(8192, 40000, 32); }),
        spec(profile, "qsort", "C: quick sort",
             "quicksort(8192,f32)",
             [] { return progQuickSort(8192, 32); }),
        spec(profile, "troff", "C: text formatter",
             "textformat(16384,66,6,f32)",
             [] { return progTextFormat(16384, 66, 6, 32); }),
        spec(profile, "c2", "C: third phase of C compiler",
             "hashtable(8,4096,16384,f32)",
             [] { return progHashTable(8, 4096, 16384, 32); }),
    };
    return suite;
}

Suite
s370Suite()
{
    const ArchProfile profile = archProfile(Arch::S370);
    Suite suite{profile, {}};
    suite.traces = {
        spec(profile, "FGO1",
             "Fortran Go step: single-precision factor analysis",
             "matmul(80)", [] { return progMatMul(80); }),
        spec(profile, "FCOMP1",
             "Fortran compile: Reynolds PDE solver program",
             "hashtable(12,16384,100000,f128)",
             [] { return progHashTable(12, 16384, 100000, 128); }),
        spec(profile, "PGO1", "PL/I Go step",
             "pchase(16384,1000000)",
             [] { return progPointerChase(16384, 1000000); }),
        spec(profile, "PGO2", "PL/I Go step: CCW analysis",
             "bst(24576,40000,f128)",
             [] { return progBst(24576, 40000, 128); }),
    };
    return suite;
}

Suite
s360Model85Suite()
{
    const ArchProfile profile = archProfile(Arch::S370);
    Suite suite{profile, {}};
    suite.traces = {
        spec(profile, "FGO", "Fortran Go step",
             "matmul(72)", [] { return progMatMul(72); }),
        spec(profile, "FCOMP", "Fortran compile",
             "lexer(49152,4,f64)",
             [] { return progLexer(49152, 4, 64); }),
        spec(profile, "COBOL1", "Cobol Go step: record processing",
             "hashtable(11,8192,60000,f64)",
             [] { return progHashTable(11, 8192, 60000, 64); }),
        spec(profile, "COBOL2", "Cobol Go step: record editing",
             "editor(16384,60000,f64)",
             [] { return progEditor(16384, 60000, 64); }),
        spec(profile, "PGO1", "PL/I Go step",
             "bst(16384,30000,f64)",
             [] { return progBst(16384, 30000, 64); }),
        spec(profile, "PGO2", "PL/I Go step",
             "linkedlist(16384,48,f64)",
             [] { return progLinkedList(16384, 48, 64); }),
    };
    return suite;
}

Suite
suiteFor(Arch arch)
{
    switch (arch) {
      case Arch::PDP11:
        return pdp11Suite();
      case Arch::Z8000:
        return z8000Suite();
      case Arch::VAX11:
        return vax11Suite();
      case Arch::S370:
        return s370Suite();
    }
    panic("bad arch %d", static_cast<int>(arch));
}

std::uint64_t
defaultTraceLength()
{
    static const std::uint64_t length =
        envPositiveU64("OCCSIM_TRACE_LEN", 1000000);
    return length;
}

VectorTrace
buildTrace(const WorkloadSpec &spec_in, std::uint64_t refs)
{
    if (refs == 0)
        refs = defaultTraceLength();
    OCCSIM_TELEM_STAGE("trace.build");
    Program program =
        assemble(spec_in.makeSource(), spec_in.profile.machine);
    VmTraceSource source(std::move(program), spec_in.name,
                         /*loop_on_halt=*/true);
    VectorTrace trace = collect(source, refs);
    occsim_assert(trace.size() == refs,
                  "trace '%s' produced %zu of %llu refs",
                  spec_in.name.c_str(), trace.size(),
                  static_cast<unsigned long long>(refs));
    OCCSIM_TELEM_COUNT("trace.build.refs", refs);
    obs::recordTrace(spec_in.name, refs);
    return trace;
}

namespace {

/**
 * Process-wide trace-build cache. Entries are shared_futures so that
 * concurrent builders of *different* specs proceed in parallel while
 * concurrent requests for the *same* spec execute the VM exactly
 * once and share the finished (immutable) trace.
 */
struct TraceCache
{
    std::mutex mutex;
    std::unordered_map<
        std::string,
        std::shared_future<std::shared_ptr<const VectorTrace>>>
        entries;
};

TraceCache &
traceCache()
{
    static TraceCache cache;
    return cache;
}

std::string
traceKey(const WorkloadSpec &spec, std::uint64_t refs)
{
    // Specs are fully determined by trace name, substitute program,
    // architecture (fixes the machine layout and word size), and
    // length; trace generation is deterministic in those inputs.
    return strfmt("%s|%s|%d|%llu", spec.name.c_str(),
                  spec.programId.c_str(),
                  static_cast<int>(spec.profile.arch),
                  static_cast<unsigned long long>(refs));
}

} // namespace

std::shared_ptr<const VectorTrace>
buildTraceShared(const WorkloadSpec &spec_in, std::uint64_t refs)
{
    if (refs == 0)
        refs = defaultTraceLength();
    const std::string key = traceKey(spec_in, refs);
    TraceCache &cache = traceCache();

    std::promise<std::shared_ptr<const VectorTrace>> promise;
    std::shared_future<std::shared_ptr<const VectorTrace>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.entries.find(key);
        if (it == cache.entries.end()) {
            builder = true;
            future = promise.get_future().share();
            cache.entries.emplace(key, future);
        } else {
            future = it->second;
        }
    }

    if (builder) {
        try {
            promise.set_value(std::make_shared<const VectorTrace>(
                buildTrace(spec_in, refs)));
        } catch (...) {
            // Drop the failed entry so a later call can retry, then
            // propagate to every waiter.
            {
                std::lock_guard<std::mutex> lock(cache.mutex);
                cache.entries.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
clearTraceCache()
{
    TraceCache &cache = traceCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.clear();
}

} // namespace occsim
