/**
 * @file
 * Architecture profiles for the four trace families of the paper
 * (Tables 2-5): data-path word size, address-space scale, and the
 * OC-1 machine layout used when generating that family's traces.
 *
 * Per the paper's methodology, the 16-bit families (PDP-11, Z8000)
 * move 2 bytes per reference and the 32-bit families (VAX-11,
 * System/370) move 4; working-set scale grows from the compact Z8000
 * utilities to the large System/370 jobs.
 */

#ifndef OCCSIM_WORKLOAD_PROFILES_HH
#define OCCSIM_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>

#include "vm/assembler.hh"

namespace occsim {

/** The four architecture families studied in the paper. */
enum class Arch : std::uint8_t {
    PDP11 = 0,
    Z8000 = 1,
    VAX11 = 2,
    S370 = 3,
};

/** @return "PDP-11", "Z8000", "VAX-11" or "System/370". */
const char *archName(Arch arch);

/** Per-architecture trace-generation profile. */
struct ArchProfile
{
    Arch arch;
    std::string name;
    std::uint32_t wordSize;        ///< data-path bytes per reference
    MachineConfig machine;         ///< OC-1 layout for this family
};

/** @return the profile for @p arch. */
ArchProfile archProfile(Arch arch);

/** All four architectures in the paper's presentation order
 *  (PDP-11, Z8000, VAX-11, System/370). */
const Arch kAllArchs[] = {Arch::PDP11, Arch::Z8000, Arch::VAX11,
                          Arch::S370};

} // namespace occsim

#endif // OCCSIM_WORKLOAD_PROFILES_HH
