#include "workload/profiles.hh"

#include "util/logging.hh"

namespace occsim {

const char *
archName(Arch arch)
{
    switch (arch) {
      case Arch::PDP11:
        return "PDP-11";
      case Arch::Z8000:
        return "Z8000";
      case Arch::VAX11:
        return "VAX-11";
      case Arch::S370:
        return "System/370";
    }
    return "unknown";
}

ArchProfile
archProfile(Arch arch)
{
    ArchProfile profile;
    profile.arch = arch;
    profile.name = archName(arch);
    switch (arch) {
      case Arch::PDP11:
        profile.wordSize = 2;
        profile.machine = MachineConfig::word16();
        break;
      case Arch::Z8000:
        profile.wordSize = 2;
        profile.machine = MachineConfig::word16();
        // Z8000 Unix utilities are compact: a smaller code window
        // keeps instruction footprints tight, as the paper observed.
        profile.machine.dataBase = 0x2000;
        break;
      case Arch::VAX11:
        profile.wordSize = 4;
        profile.machine = MachineConfig::word32(1u << 23);
        break;
      case Arch::S370:
        profile.wordSize = 4;
        profile.machine = MachineConfig::word32(1u << 24);
        break;
      default:
        panic("bad arch %d", static_cast<int>(arch));
    }
    return profile;
}

} // namespace occsim
