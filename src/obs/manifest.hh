/**
 * @file
 * Run manifests: a structured, machine-readable record of what one
 * simulation run actually did — which traces at which lengths, which
 * configs routed to which engine, how many threads, how long each
 * stage took, what the binary and source tree were.
 *
 * Motivation: after the parallel, single-pass and batched engines, a
 * single sweep call fans out across engines and threads invisibly.
 * Trustworthy trace-driven results need a record of exactly what was
 * simulated and how (Bueno et al.), and a fast multi-config
 * simulator needs per-stage cost accounting to find the next hot
 * path (DEW). The manifest is that record, emitted as one JSON
 * document.
 *
 * Emission contract: when the OCCSIM_MANIFEST environment variable
 * names a path (or a CLI passes one to setManifestPath()), telemetry
 * is enabled and the process writes its manifest there at exit —
 * every bench and harness binary gets this for free through the
 * library hooks. SweepReport additionally carries a manifest built
 * at the end of each runSweep() call, regardless of the environment.
 */

#ifndef OCCSIM_OBS_MANIFEST_HH
#define OCCSIM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.hh"

namespace occsim::obs {

/** Identity of one trace consumed by the run. */
struct TraceRecord
{
    std::string name;
    std::uint64_t refs = 0;
};

/** Engine routing decision for one config of a sweep. */
struct ConfigRoute
{
    std::string config;  ///< CacheConfig::shortName()
    std::string engine;  ///< "direct" / "single_pass" / "batch" /
                         ///< "shard" (sharded on at least one trace)
                         ///< / "split" / "sample" / "coherent"
    /** Sampling engine only: the headline miss-ratio estimate
     *  (cross-trace mean with its standard error), so a sampled
     *  manifest carries the uncertainty of its numbers. Absent from
     *  the JSON for exact routes. */
    bool sampled = false;
    double missRatioMean = 0.0;
    double missRatioStdErr = 0.0;
    /** Coherent engine only: the per-config coherency-traffic
     *  columns (cross-trace averages, same arithmetic as
     *  SweepReport::average). Absent from the JSON for single-cache
     *  routes. */
    bool coherent = false;
    double cohInvalPerKiloRef = 0.0;
    double cohTrafficRatio = 0.0;
};

/** One sweep session (one runSweep call). */
struct SweepRecord
{
    std::string label;       ///< caller-supplied ("table6", ...)
    std::string engineMode;  ///< SweepEngine policy name
    unsigned threads = 1;
    std::size_t numTraces = 0;
    std::uint64_t maxRefs = 0;         ///< request cap (0 = all)
    std::uint64_t refsSimulated = 0;   ///< refs x configs actually run
    double wallMs = 0.0;
    std::size_t crossCheckSamples = 0;
    /** Set-sharded engine activity: (trace, config) runs sharded,
     *  the largest shard count used, and the fullest/emptiest shard
     *  sub-trace seen (the imbalance spread — hot sets show up as
     *  shardMaxRefs >> shardMinRefs). All zero when nothing sharded. */
    std::size_t shardedRuns = 0;
    std::uint32_t shardMaxShards = 0;
    std::uint64_t shardMaxRefs = 0;
    std::uint64_t shardMinRefs = 0;
    /** Fused group engine activity: (trace, group) passes run and
     *  configs that rode one. Zero when nothing fused. */
    std::size_t fusedRuns = 0;
    std::size_t fusedConfigs = 0;
    /** Sampling-engine activity (SweepEngine::Sampled only): (trace,
     *  config) runs sampled, the spec knobs, total measured units
     *  across traces, and total references priced inside units. All
     *  zero for exact sweeps. */
    std::size_t sampledRuns = 0;
    std::uint64_t sampleUnitRefs = 0;
    std::uint64_t sampleIntervalUnits = 0;
    std::uint64_t sampleWarmupRefs = 0;
    std::uint64_t sampleUnits = 0;
    std::uint64_t sampleMeasuredRefs = 0;
    /** Coherent-engine activity: the scenario's core count (1 = the
     *  single-cache model; the coh_* keys are then absent from the
     *  JSON, keeping pre-scenario manifests byte-identical) and the
     *  snooping-bus traffic totals summed over every (trace, config)
     *  run of the sweep. */
    std::uint32_t scenarioCores = 1;
    std::uint64_t cohBusReads = 0;
    std::uint64_t cohBusReadForOwnership = 0;
    std::uint64_t cohBusUpgrades = 0;
    std::uint64_t cohInvalidations = 0;
    std::uint64_t cohCacheToCacheTransfers = 0;
    std::uint64_t cohC2cWords = 0;
    std::uint64_t cohSnoopWritebackWords = 0;
    std::vector<ConfigRoute> routes;   ///< one per config, grid order
};

/**
 * One request handled by the sweep server (src/serve). Recorded per
 * request, so a server run's manifest is an audit trail: what was
 * asked, how much of it the result cache absorbed, and how long the
 * computed remainder took.
 */
struct ServeRecord
{
    std::string label;      ///< client-supplied request label
    std::string op;         ///< wire op ("sweep", ...)
    std::size_t numTraces = 0;
    std::size_t numConfigs = 0;
    std::size_t cells = 0;       ///< traces x configs result cells
    std::size_t cacheHits = 0;   ///< cells served from the cache
    std::size_t cacheMisses = 0; ///< cells computed by runSweep
    int priority = 0;
    double wallMs = 0.0;  ///< request wall time (queue + compute)
};

/** Record one served request into the process session (same
 *  retention cap as sweeps). */
void recordServe(const ServeRecord &record);

/** Derived per-engine totals (from the engine.* telemetry). */
struct EngineUsage
{
    std::string name;
    std::uint64_t refs = 0;   ///< references simulated
    std::uint64_t bytes = 0;  ///< trace bytes streamed
    double wallMs = 0.0;      ///< summed across threads
    /** Millions of simulated references per wall-second (0 when the
     *  stage recorded no time). */
    double mrefsPerSec = 0.0;
};

/** The complete manifest of one run. */
struct RunManifest
{
    std::string schema = "occsim.run_manifest/1";
    std::string binary;
    std::string git;        ///< git describe at configure time
    std::string buildType;  ///< CMake build type
    std::string buildFlags; ///< compiler flags summary
    unsigned threads = 1;   ///< configuredThreadCount()
    std::vector<TraceRecord> traces;
    std::vector<SweepRecord> sweeps;
    /** Server request records; empty (and absent from the JSON) for
     *  non-server runs, so existing manifests are unchanged. */
    std::vector<ServeRecord> serves;
    std::vector<StageSnapshot> stages;
    std::vector<CounterSnapshot> counters;
    std::vector<EngineUsage> engines;

    /** Serialize as one JSON object (the manifest schema; see
     *  DESIGN.md §11 for the key-by-key description). */
    std::string toJson() const;
};

/**
 * Record a trace identity into the process session (deduplicated on
 * (name, refs)). Called by the trace builders and by runSweep.
 */
void recordTrace(const std::string &name, std::uint64_t refs);

/** Record one finished sweep into the process session. Recording is
 *  capped (kMaxRecordedSweeps) so unbounded loops of tiny sweeps —
 *  e.g. the differential fuzzer — cannot grow memory without bound;
 *  a "sweeps_dropped" counter reports any overflow. */
void recordSweep(const SweepRecord &record);

/** Sweep-record retention cap (overflow is counted, not silent). */
constexpr std::size_t kMaxRecordedSweeps = 4096;

/**
 * Route manifest emission to @p path, enable telemetry, and register
 * the at-exit writer (once). The CLI spelling of OCCSIM_MANIFEST.
 */
void setManifestPath(const std::string &path);

/**
 * Read OCCSIM_MANIFEST once and arm emission if it names a path.
 * @return whether emission is active. Referenced from the telemetry
 * TU's static initialization, so ANY binary that links an
 * instrumented engine honors OCCSIM_MANIFEST without per-binary code.
 */
bool manifestEnvHook();

/** The active manifest path ("" when emission is off). */
std::string manifestPath();

/** Override the binary name recorded in manifests (defaults to the
 *  process name). */
void setManifestBinary(const std::string &name);

/** Assemble the manifest of everything recorded so far: session
 *  traces and sweeps plus a snapshot of the global telemetry. */
RunManifest currentManifest();

/**
 * Serialize currentManifest() to @p path now.
 * @return success (failures warn but never abort a run).
 */
bool writeManifest(const std::string &path);

} // namespace occsim::obs

#endif // OCCSIM_OBS_MANIFEST_HH
