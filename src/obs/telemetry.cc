#include "obs/telemetry.hh"

#include <algorithm>
#include <unordered_map>

#include "obs/manifest.hh"

namespace occsim::obs {

namespace {

/** Global fast-path flag mirroring telemetry().enabled(). */
std::atomic<bool> g_enabled{false};

std::atomic<std::uint64_t> g_nextTelemetryId{1};

/** Anchors the manifest TU (and its OCCSIM_MANIFEST environment
 *  hook) into every binary that links any instrumentation — static
 *  archives drop unreferenced TUs otherwise. */
[[maybe_unused]] const bool g_manifestHooked = manifestEnvHook();

} // namespace

/** Per-thread recording buffer. The owning thread is the only
 *  writer; the sink mutex makes merges (snapshots from another
 *  thread) safe. */
struct Telemetry::Sink
{
    struct StageAgg
    {
        std::uint64_t calls = 0;
        std::uint64_t ns = 0;
    };

    std::mutex mutex;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, StageAgg> stages;
};

namespace {

/** Thread-local sink directory: one entry per Telemetry instance
 *  this thread has recorded into. Entries for dead instances are
 *  harmless — ids are process-unique, so they can never match a new
 *  registry. */
struct SinkRef
{
    std::uint64_t id;
    Telemetry::Sink *sink;
};

thread_local std::vector<SinkRef> t_sinks;

} // namespace

Telemetry::Telemetry()
    : id_(g_nextTelemetryId.fetch_add(1, std::memory_order_relaxed))
{
}

Telemetry::~Telemetry() = default;

Telemetry::Sink &
Telemetry::localSink()
{
    for (const SinkRef &ref : t_sinks) {
        if (ref.id == id_)
            return *ref.sink;
    }
    auto sink = std::make_unique<Sink>();
    Sink *raw = sink.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sinks_.push_back(std::move(sink));
    }
    t_sinks.push_back(SinkRef{id_, raw});
    return *raw;
}

void
Telemetry::counterAdd(std::string_view name, std::uint64_t delta)
{
    Sink &sink = localSink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.counters[std::string(name)] += delta;
}

void
Telemetry::stageAdd(std::string_view name, std::uint64_t ns)
{
    Sink &sink = localSink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    Sink::StageAgg &agg = sink.stages[std::string(name)];
    agg.calls += 1;
    agg.ns += ns;
}

std::vector<CounterSnapshot>
Telemetry::counters() const
{
    std::unordered_map<std::string, std::uint64_t> merged;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &sink : sinks_) {
            std::lock_guard<std::mutex> sink_lock(sink->mutex);
            for (const auto &[name, value] : sink->counters)
                merged[name] += value;
        }
    }
    std::vector<CounterSnapshot> out;
    out.reserve(merged.size());
    for (const auto &[name, value] : merged)
        out.push_back(CounterSnapshot{name, value});
    std::sort(out.begin(), out.end(),
              [](const CounterSnapshot &a, const CounterSnapshot &b) {
                  return a.name < b.name;
              });
    return out;
}

std::vector<StageSnapshot>
Telemetry::stages() const
{
    std::unordered_map<std::string, Sink::StageAgg> merged;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &sink : sinks_) {
            std::lock_guard<std::mutex> sink_lock(sink->mutex);
            for (const auto &[name, agg] : sink->stages) {
                Sink::StageAgg &into = merged[name];
                into.calls += agg.calls;
                into.ns += agg.ns;
            }
        }
    }
    std::vector<StageSnapshot> out;
    out.reserve(merged.size());
    for (const auto &[name, agg] : merged) {
        out.push_back(StageSnapshot{
            name, agg.calls, static_cast<double>(agg.ns) / 1e6});
    }
    std::sort(out.begin(), out.end(),
              [](const StageSnapshot &a, const StageSnapshot &b) {
                  return a.name < b.name;
              });
    return out;
}

void
Telemetry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &sink : sinks_) {
        std::lock_guard<std::mutex> sink_lock(sink->mutex);
        sink->counters.clear();
        sink->stages.clear();
    }
}

Telemetry &
telemetry()
{
    // Never destroyed: worker threads and atexit manifest emission
    // may record/snapshot after main() returns.
    static Telemetry *global = new Telemetry();
    return *global;
}

bool
telemetryEnabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setTelemetryEnabled(bool enabled)
{
    telemetry().setEnabled(enabled);
    g_enabled.store(enabled, std::memory_order_relaxed);
}

} // namespace occsim::obs
