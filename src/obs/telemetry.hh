/**
 * @file
 * Engine telemetry: named monotonic counters and stage wall-time
 * spans, recorded through per-thread sinks and merged on snapshot.
 *
 * Design constraints (see DESIGN.md §11):
 *
 *  - Near-zero cost when disabled: every hook first performs one
 *    relaxed atomic load (telemetryEnabled()) and returns. Hooks are
 *    placed at STAGE granularity (one per tile / level / sweep, never
 *    per reference), so even the enabled path is far below 1% of any
 *    engine's runtime.
 *  - Thread-safe without contention: each worker thread records into
 *    its own sink (registered once per (thread, Telemetry) pair);
 *    sinks are merged under their own short-lived locks only when a
 *    snapshot is taken.
 *  - Compiled out entirely when OCCSIM_NO_TELEMETRY is defined: the
 *    OCCSIM_TELEM_* macros expand to nothing (bench_obs quantifies
 *    all three regimes).
 *
 * The global telemetry() instance is what the engine hooks feed and
 * what RunManifest snapshots; tests and embedders can also construct
 * private Telemetry instances and record into them directly (e.g.
 * through SweepRequest::telemetry).
 */

#ifndef OCCSIM_OBS_TELEMETRY_HH
#define OCCSIM_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace occsim::obs {

/** One merged counter value. */
struct CounterSnapshot
{
    std::string name;
    std::uint64_t value = 0;
};

/** One merged stage span: invocation count + accumulated wall time
 *  (summed across threads, so concurrent stages can exceed the
 *  process wall clock — it is per-stage CPU-side cost). */
struct StageSnapshot
{
    std::string name;
    std::uint64_t calls = 0;
    double wallMs = 0.0;
};

/** Registry of named monotonic counters and stage spans. */
class Telemetry
{
  public:
    /** Per-thread recording buffer (implementation detail, public
     *  only so the thread-local sink directory can name it). */
    struct Sink;

    Telemetry();
    ~Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Add @p delta to counter @p name (creates it at zero). */
    void counterAdd(std::string_view name, std::uint64_t delta);

    /** Record one invocation of stage @p name lasting @p ns. */
    void stageAdd(std::string_view name, std::uint64_t ns);

    /** Merge every per-thread sink into one sorted-by-name list. */
    std::vector<CounterSnapshot> counters() const;
    std::vector<StageSnapshot> stages() const;

    /** Zero every counter and stage (benchmarks and tests). */
    void reset();

  private:
    Sink &localSink();

    /** Process-unique instance id, so thread-local sink lookups can
     *  never alias a dead Telemetry re-allocated at the same
     *  address. */
    std::uint64_t id_;
    std::atomic<bool> enabled_{true};
    mutable std::mutex mutex_;  ///< guards sinks_
    std::vector<std::unique_ptr<Sink>> sinks_;
};

/** The process-wide telemetry registry fed by the engine hooks.
 *  Starts DISABLED; enabled by setManifestPath() (including the
 *  OCCSIM_MANIFEST environment hook) or explicitly. */
Telemetry &telemetry();

/** Fast global-enable check for instrumentation sites: one relaxed
 *  atomic load, no function-local-static guard. */
bool telemetryEnabled();

/** Enable/disable the global registry (and the fast flag). */
void setTelemetryEnabled(bool enabled);

/** Hook form of Telemetry::counterAdd on the global registry: no-op
 *  unless telemetryEnabled(). */
inline void counterAdd(std::string_view name, std::uint64_t delta);

/**
 * RAII steady-clock span. Records into @p sink (or the global
 * registry when null) on destruction; when constructed against the
 * global registry while telemetry is disabled it arms nothing and
 * costs one atomic load. An explicit sink records unconditionally.
 */
class StageTimer
{
  public:
    explicit StageTimer(const char *stage, Telemetry *sink = nullptr)
        : stage_(stage), sink_(sink),
          armed_(sink != nullptr || telemetryEnabled())
    {
        if (armed_)
            start_ = std::chrono::steady_clock::now();
    }

    ~StageTimer() { stop(); }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

    /** End the span early (idempotent). */
    void stop()
    {
        if (!armed_)
            return;
        armed_ = false;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        Telemetry &target = sink_ != nullptr ? *sink_ : telemetry();
        target.stageAdd(stage_, static_cast<std::uint64_t>(ns));
    }

  private:
    const char *stage_;
    Telemetry *sink_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
};

inline void
counterAdd(std::string_view name, std::uint64_t delta)
{
    if (telemetryEnabled())
        telemetry().counterAdd(name, delta);
}

// Instrumentation macros: stage-granularity hooks that disappear
// when OCCSIM_NO_TELEMETRY is defined (bench_obs's compiled-out
// regime) and cost one relaxed load when compiled in but disabled.
#if defined(OCCSIM_NO_TELEMETRY)
#define OCCSIM_TELEM_STAGE(name) \
    do {                         \
    } while (0)
#define OCCSIM_TELEM_COUNT(name, delta) \
    do {                                \
    } while (0)
#else
#define OCCSIM_TELEM_CONCAT2(a, b) a##b
#define OCCSIM_TELEM_CONCAT(a, b) OCCSIM_TELEM_CONCAT2(a, b)
/** Time the rest of the enclosing scope as stage @p name. */
#define OCCSIM_TELEM_STAGE(name)                 \
    ::occsim::obs::StageTimer OCCSIM_TELEM_CONCAT( \
        occsim_stage_timer_, __LINE__)(name)
/** Bump global counter @p name by @p delta. */
#define OCCSIM_TELEM_COUNT(name, delta) \
    ::occsim::obs::counterAdd((name), (delta))
#endif

} // namespace occsim::obs

#endif // OCCSIM_OBS_TELEMETRY_HH
