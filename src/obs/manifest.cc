#include "obs/manifest.hh"

#include <cstdlib>
#include <mutex>

#include "obs/json.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

#ifndef OCCSIM_GIT_DESCRIBE
#define OCCSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef OCCSIM_BUILD_TYPE
#define OCCSIM_BUILD_TYPE "unknown"
#endif
#ifndef OCCSIM_BUILD_FLAGS
#define OCCSIM_BUILD_FLAGS ""
#endif

namespace occsim::obs {

namespace {

/** Process-wide manifest session state. */
struct Session
{
    std::mutex mutex;
    std::string path;
    std::string binary;
    std::vector<TraceRecord> traces;
    std::vector<SweepRecord> sweeps;
    std::vector<ServeRecord> serves;
    std::uint64_t sweepsDropped = 0;
    std::uint64_t servesDropped = 0;
    bool atexitRegistered = false;
};

Session &
session()
{
    // Never destroyed: the atexit writer runs during shutdown.
    static Session *s = new Session();
    return *s;
}

std::string
processName()
{
#if defined(__GLIBC__)
    if (program_invocation_short_name != nullptr &&
        *program_invocation_short_name != '\0')
        return program_invocation_short_name;
#endif
    return "occsim";
}

void
writeManifestAtExit()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(session().mutex);
        path = session().path;
    }
    if (!path.empty())
        writeManifest(path);
}

void
appendEngineUsage(std::vector<EngineUsage> &engines,
                  const std::vector<StageSnapshot> &stages,
                  const std::vector<CounterSnapshot> &counters,
                  const std::string &name)
{
    EngineUsage usage;
    usage.name = name;
    const std::string stage_name = "engine." + name;
    bool seen = false;
    for (const StageSnapshot &stage : stages) {
        if (stage.name == stage_name) {
            usage.wallMs = stage.wallMs;
            seen = true;
        }
    }
    for (const CounterSnapshot &counter : counters) {
        if (counter.name == stage_name + ".refs") {
            usage.refs = counter.value;
            seen = true;
        } else if (counter.name == stage_name + ".bytes") {
            usage.bytes = counter.value;
            seen = true;
        }
    }
    if (!seen)
        return;
    if (usage.wallMs > 0.0) {
        usage.mrefsPerSec = static_cast<double>(usage.refs) /
                            (usage.wallMs * 1e3);
    }
    engines.push_back(usage);
}

} // namespace

void
recordTrace(const std::string &name, std::uint64_t refs)
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const TraceRecord &trace : s.traces) {
        if (trace.name == name && trace.refs == refs)
            return;
    }
    s.traces.push_back(TraceRecord{name, refs});
}

void
recordSweep(const SweepRecord &record)
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.sweeps.size() >= kMaxRecordedSweeps) {
        ++s.sweepsDropped;
        return;
    }
    s.sweeps.push_back(record);
}

void
recordServe(const ServeRecord &record)
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.serves.size() >= kMaxRecordedSweeps) {
        ++s.servesDropped;
        return;
    }
    s.serves.push_back(record);
}

void
setManifestPath(const std::string &path)
{
    Session &s = session();
    bool register_atexit = false;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.path = path;
        if (!s.atexitRegistered) {
            s.atexitRegistered = true;
            register_atexit = true;
        }
    }
    setTelemetryEnabled(true);
    if (register_atexit)
        std::atexit(writeManifestAtExit);
}

bool
manifestEnvHook()
{
    static const bool active = [] {
        const char *path = std::getenv("OCCSIM_MANIFEST");
        if (path == nullptr || *path == '\0')
            return false;
        setManifestPath(path);
        return true;
    }();
    return active;
}

std::string
manifestPath()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.path;
}

void
setManifestBinary(const std::string &name)
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.binary = name;
}

RunManifest
currentManifest()
{
    RunManifest manifest;
    manifest.git = OCCSIM_GIT_DESCRIBE;
    manifest.buildType = OCCSIM_BUILD_TYPE;
    manifest.buildFlags = OCCSIM_BUILD_FLAGS;
    manifest.threads = configuredThreadCount();
    manifest.stages = telemetry().stages();
    manifest.counters = telemetry().counters();

    std::uint64_t dropped = 0;
    std::uint64_t serves_dropped = 0;
    {
        Session &s = session();
        std::lock_guard<std::mutex> lock(s.mutex);
        manifest.binary = s.binary.empty() ? processName() : s.binary;
        manifest.traces = s.traces;
        manifest.sweeps = s.sweeps;
        manifest.serves = s.serves;
        dropped = s.sweepsDropped;
        serves_dropped = s.servesDropped;
    }
    if (dropped > 0) {
        manifest.counters.push_back(
            CounterSnapshot{"sweeps_dropped", dropped});
    }
    if (serves_dropped > 0) {
        manifest.counters.push_back(
            CounterSnapshot{"serves_dropped", serves_dropped});
    }

    for (const char *engine :
         {"direct", "single_pass", "batch", "shard", "fused",
          "shadow", "sample", "coherent"}) {
        appendEngineUsage(manifest.engines, manifest.stages,
                          manifest.counters, engine);
    }
    return manifest;
}

std::string
RunManifest::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", schema);
    w.kv("binary", binary);
    w.kv("git", git);
    w.key("build").beginObject();
    w.kv("type", buildType);
    w.kv("flags", buildFlags);
    w.endObject();
    w.kv("threads", std::uint64_t{threads});

    w.key("traces").beginArray();
    for (const TraceRecord &trace : traces) {
        w.beginObject();
        w.kv("name", trace.name);
        w.kv("refs", trace.refs);
        w.endObject();
    }
    w.endArray();

    w.key("sweeps").beginArray();
    for (const SweepRecord &sweep : sweeps) {
        w.beginObject();
        w.kv("label", sweep.label);
        w.kv("engine_mode", sweep.engineMode);
        w.kv("threads", std::uint64_t{sweep.threads});
        w.kv("traces", std::uint64_t{sweep.numTraces});
        w.kv("max_refs", sweep.maxRefs);
        w.kv("refs_simulated", sweep.refsSimulated);
        w.kv("wall_ms", sweep.wallMs);
        w.kv("cross_check_samples",
             std::uint64_t{sweep.crossCheckSamples});
        w.kv("sharded_runs", std::uint64_t{sweep.shardedRuns});
        w.kv("shard_max_shards",
             std::uint64_t{sweep.shardMaxShards});
        w.kv("shard_max_refs", sweep.shardMaxRefs);
        w.kv("shard_min_refs", sweep.shardMinRefs);
        w.kv("fused_runs", std::uint64_t{sweep.fusedRuns});
        w.kv("fused_configs", std::uint64_t{sweep.fusedConfigs});
        w.kv("sampled_runs", std::uint64_t{sweep.sampledRuns});
        w.kv("sample_unit_refs", sweep.sampleUnitRefs);
        w.kv("sample_interval_units", sweep.sampleIntervalUnits);
        w.kv("sample_warmup_refs", sweep.sampleWarmupRefs);
        w.kv("sample_units", sweep.sampleUnits);
        w.kv("sample_measured_refs", sweep.sampleMeasuredRefs);
        // Pre-scenario manifests stay byte-identical: the scenario
        // keys appear only for multicore sweeps.
        if (sweep.scenarioCores > 1) {
            w.kv("scenario_cores",
                 std::uint64_t{sweep.scenarioCores});
            w.kv("coh_bus_reads", sweep.cohBusReads);
            w.kv("coh_bus_rfo", sweep.cohBusReadForOwnership);
            w.kv("coh_bus_upgrades", sweep.cohBusUpgrades);
            w.kv("coh_invalidations", sweep.cohInvalidations);
            w.kv("coh_c2c_transfers",
                 sweep.cohCacheToCacheTransfers);
            w.kv("coh_c2c_words", sweep.cohC2cWords);
            w.kv("coh_snoop_wb_words", sweep.cohSnoopWritebackWords);
        }
        w.key("configs").beginArray();
        for (const ConfigRoute &route : sweep.routes) {
            w.beginObject();
            w.kv("name", route.config);
            w.kv("engine", route.engine);
            if (route.sampled) {
                w.kv("miss_ratio", route.missRatioMean);
                w.kv("miss_stderr", route.missRatioStdErr);
            }
            if (route.coherent) {
                w.kv("coh_inval_per_kiloref",
                     route.cohInvalPerKiloRef);
                w.kv("coh_traffic_ratio", route.cohTrafficRatio);
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    // Non-server runs keep their existing schema byte-for-byte: the
    // serves array appears only when something was served.
    if (!serves.empty()) {
        w.key("serves").beginArray();
        for (const ServeRecord &serve : serves) {
            w.beginObject();
            w.kv("label", serve.label);
            w.kv("op", serve.op);
            w.kv("traces", std::uint64_t{serve.numTraces});
            w.kv("configs", std::uint64_t{serve.numConfigs});
            w.kv("cells", std::uint64_t{serve.cells});
            w.kv("cache_hits", std::uint64_t{serve.cacheHits});
            w.kv("cache_misses", std::uint64_t{serve.cacheMisses});
            w.kv("priority", serve.priority);
            w.kv("wall_ms", serve.wallMs);
            w.endObject();
        }
        w.endArray();
    }

    w.key("stages").beginArray();
    for (const StageSnapshot &stage : stages) {
        w.beginObject();
        w.kv("name", stage.name);
        w.kv("calls", stage.calls);
        w.kv("wall_ms", stage.wallMs);
        w.endObject();
    }
    w.endArray();

    w.key("engines").beginArray();
    for (const EngineUsage &engine : engines) {
        w.beginObject();
        w.kv("name", engine.name);
        w.kv("refs", engine.refs);
        w.kv("bytes", engine.bytes);
        w.kv("wall_ms", engine.wallMs);
        w.kv("mrefs_per_sec", engine.mrefsPerSec);
        w.endObject();
    }
    w.endArray();

    w.key("counters").beginObject();
    for (const CounterSnapshot &counter : counters)
        w.kv(counter.name, counter.value);
    w.endObject();

    w.endObject();
    return w.str();
}

bool
writeManifest(const std::string &path)
{
    const std::string json = currentManifest().toJson() + "\n";
    if (!writeTextFile(path, json)) {
        warn("cannot write run manifest to %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace occsim::obs
