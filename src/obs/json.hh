/**
 * @file
 * Minimal JSON support for the observability layer: a compact
 * single-line writer (used by RunManifest serialization and the
 * BENCH_JSON emitter) and a small recursive-descent parser (used by
 * the occsim-report CLI and the manifest-schema tests).
 *
 * Deliberately tiny: objects, arrays, strings, numbers, booleans and
 * null — no streaming, no comments, no external dependencies. The
 * writer produces bytes the parser accepts (round-trip tested).
 */

#ifndef OCCSIM_OBS_JSON_HH
#define OCCSIM_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace occsim::obs {

/** Escape @p text for inclusion in a JSON string literal (no
 *  surrounding quotes). */
std::string jsonEscape(std::string_view text);

/**
 * Incremental writer producing compact one-line JSON. Nesting is
 * tracked internally, commas are inserted automatically:
 *
 *   JsonWriter w;
 *   w.beginObject().key("name").value("occsim")
 *    .key("refs").value(std::uint64_t{1000000}).endObject();
 *   w.str();  // {"name":"occsim","refs":1000000}
 *
 * Doubles are rendered with shortest round-trip formatting
 * (std::to_chars), so a parse of the output reproduces the exact
 * value.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object). */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(bool boolean);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number);
    JsonWriter &null();

    /** Shorthand for key(@p name).value(@p v). */
    template <typename T>
    JsonWriter &kv(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** The document so far. Valid JSON once every container opened
     *  has been closed. */
    const std::string &str() const { return out_; }

  private:
    void separate();

    std::string out_;
    /** One entry per open container: 'o' / 'a'. */
    std::vector<char> stack_;
    bool needComma_ = false;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;  ///< array elements
    /** Object members in document order (duplicate keys preserved). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** First member named @p name, or nullptr (objects only). */
    const JsonValue *find(std::string_view name) const;

    /** number as an unsigned integer (truncating; 0 if not a number). */
    std::uint64_t asU64() const;
};

/**
 * Parse @p input into @p out.
 * @return true on success; on failure @p error (when non-null)
 * receives a one-line description with the byte offset.
 */
bool parseJson(std::string_view input, JsonValue &out,
               std::string *error = nullptr);

/** Read a whole file; @p ok (when non-null) reports success. */
std::string readTextFile(const std::string &path, bool *ok = nullptr);

/** Write @p content to @p path (truncating). @return success. */
bool writeTextFile(const std::string &path, const std::string &content);

} // namespace occsim::obs

#endif // OCCSIM_OBS_JSON_HH
