#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim::obs {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (needComma_)
        out_ += ',';
    needComma_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    stack_.push_back('o');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    occsim_assert(!stack_.empty() && stack_.back() == 'o',
                  "endObject with no open object");
    stack_.pop_back();
    out_ += '}';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    stack_.push_back('a');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    occsim_assert(!stack_.empty() && stack_.back() == 'a',
                  "endArray with no open array");
    stack_.pop_back();
    out_ += ']';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    occsim_assert(!stack_.empty() && stack_.back() == 'o',
                  "key() outside an object");
    separate();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(bool boolean)
{
    separate();
    out_ += boolean ? "true" : "false";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), number);
    out_.append(buf, res.ptr);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += strfmt("%llu", static_cast<unsigned long long>(number));
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    separate();
    out_ += strfmt("%lld", static_cast<long long>(number));
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    needComma_ = true;
    return *this;
}

const JsonValue *
JsonValue::find(std::string_view name) const
{
    for (const auto &[key, val] : members) {
        if (key == name)
            return &val;
    }
    return nullptr;
}

std::uint64_t
JsonValue::asU64() const
{
    if (!isNumber() || number < 0.0)
        return 0;
    return static_cast<std::uint64_t>(number);
}

namespace {

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view input, std::string *error)
        : input_(input), error_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != input_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &message)
    {
        if (error_ != nullptr) {
            *error_ = strfmt("offset %zu: %s", pos_, message.c_str());
        }
        return false;
    }

    void skipSpace()
    {
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_])))
            ++pos_;
    }

    bool literal(std::string_view word)
    {
        if (input_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= input_.size())
            return fail("unexpected end of input");
        const char c = input_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_;  // '{'
        skipSpace();
        if (pos_ < input_.size() && input_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= input_.size() || input_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= input_.size() || input_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipSpace();
            JsonValue child;
            if (!parseValue(child, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(child));
            skipSpace();
            if (pos_ >= input_.size())
                return fail("unterminated object");
            if (input_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (input_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_;  // '['
        skipSpace();
        if (pos_ < input_.size() && input_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            JsonValue child;
            if (!parseValue(child, depth + 1))
                return false;
            out.items.push_back(std::move(child));
            skipSpace();
            if (pos_ >= input_.size())
                return fail("unterminated array");
            if (input_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (input_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < input_.size()) {
            const char c = input_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= input_.size())
                    return fail("unterminated escape");
                const char esc = input_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > input_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = input_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // Encode the code point as UTF-8 (BMP only; this
                    // writer never emits surrogate pairs).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < input_.size() && input_[pos_] == '-')
            ++pos_;
        while (pos_ < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '.' || input_[pos_] == 'e' ||
                input_[pos_] == 'E' || input_[pos_] == '+' ||
                input_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string_view token = input_.substr(start, pos_ - start);
        double parsed = 0.0;
        const auto res = std::from_chars(token.data(),
                                         token.data() + token.size(),
                                         parsed);
        if (res.ec != std::errc() ||
            res.ptr != token.data() + token.size()) {
            pos_ = start;
            return fail("malformed number");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = parsed;
        return true;
    }

    std::string_view input_;
    std::size_t pos_ = 0;
    std::string *error_;
};

} // namespace

bool
parseJson(std::string_view input, JsonValue &out, std::string *error)
{
    out = JsonValue();
    Parser parser(input, error);
    return parser.parse(out);
}

std::string
readTextFile(const std::string &path, bool *ok)
{
    std::string content;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        if (ok != nullptr)
            *ok = false;
        return content;
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        content.append(buf, n);
    std::fclose(file);
    if (ok != nullptr)
        *ok = true;
    return content;
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        return false;
    const bool wrote =
        std::fwrite(content.data(), 1, content.size(), file) ==
        content.size();
    const bool closed = std::fclose(file) == 0;
    return wrote && closed;
}

} // namespace occsim::obs
