/**
 * @file
 * asmview: inspect the OC-1 workload programs.
 *
 *   asmview <program-name> [-word 2|4] [-src]
 *
 * Prints the assembled listing (addresses + decoded instructions,
 * via the disassembler) of any library program, or with -src the
 * generated assembly source itself. Useful when tuning workload
 * parameters or studying why a trace behaves as it does.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "util/logging.hh"
#include "vm/disasm.hh"
#include "vm/program_library.hh"

using namespace occsim;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: asmview <program-name> [-word 2|4] "
                     "[-src]\nprograms:");
        for (const std::string &name : programNames())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    std::uint32_t word = 2;
    bool show_source = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "-word") == 0 && i + 1 < argc) {
            word = static_cast<std::uint32_t>(std::atoi(argv[++i]));
            if (word != 2 && word != 4)
                fatal("-word must be 2 or 4");
        } else if (std::strcmp(argv[i], "-src") == 0) {
            show_source = true;
        } else {
            fatal("unknown option '%s'", argv[i]);
        }
    }

    const std::string source = programByName(argv[1]);
    if (show_source) {
        std::fputs(source.c_str(), stdout);
        return 0;
    }

    const MachineConfig config = word == 2 ? MachineConfig::word16()
                                           : MachineConfig::word32();
    const Program program = assemble(source, config);
    std::fputs(disassemble(program).c_str(), stdout);
    std::printf("\n; code %u bytes at 0x%04x, data %zu bytes at "
                "0x%04x\n",
                program.codeBytes(), config.codeBase,
                program.data.size(), config.dataBase);
    return 0;
}
