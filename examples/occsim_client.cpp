/**
 * @file
 * occsim-client: a command-line client for occsim-serve.
 *
 * Usage:
 *   occsim-client (--unix PATH | --tcp PORT) <op> [options]
 *
 * Ops:
 *   ping        liveness probe (prints the pong)
 *   list        print the server's corpus entries
 *   stats       print the server activity snapshot
 *   shutdown    ask the server to shut down
 *   sweep       run a sweep and stream results as they arrive:
 *     --trace REF      corpus hash or trace name (repeatable)
 *     --net LIST       comma list of net cache sizes (default
 *                      256,512,1024,2048,4096)
 *     --block N        block size in bytes            (default 16)
 *     --sub N          sub-block size in bytes        (default block)
 *     --word N         word size in bytes             (default 2)
 *     --max-refs N     reference cap per trace        (default all)
 *     --priority N     scheduling priority            (default 0)
 *     --label S        label recorded in the server manifest
 *
 * Each "result" frame is printed as one line (trace hash, config
 * indices, miss ratio, traffic ratio, cached flag); the final "done"
 * frame's cache-hit split is printed as a summary. Exit status is 0
 * only when the request completed without an error frame.
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "obs/json.hh"
#include "serve/protocol.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace occsim;
using namespace occsim::serve;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: occsim-client (--unix PATH | --tcp PORT) <op> "
        "[options]\n"
        "  ops: ping | list | stats | shutdown | sweep\n"
        "  sweep: --trace REF [--trace REF...] [--net LIST]\n"
        "         [--block N] [--sub N] [--word N] [--max-refs N]\n"
        "         [--priority N] [--label S]\n");
    std::exit(1);
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    std::uint64_t value = 0;
    if (!parseU64(argv[++i], value))
        fatal("bad numeric argument '%s'", argv[i]);
    return value;
}

std::vector<std::uint32_t>
parseList(const std::string &text)
{
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::uint64_t value = 0;
        if (!parseU64(text.substr(pos, comma - pos), value))
            fatal("bad list element in '%s'", text.c_str());
        out.push_back(static_cast<std::uint32_t>(value));
        pos = comma + 1;
    }
    if (out.empty())
        fatal("empty size list");
    return out;
}

double
numberField(const obs::JsonValue &object, const char *name)
{
    const obs::JsonValue *field = object.find(name);
    return field != nullptr ? field->number : 0.0;
}

/** Stream response frames until "done"/"error"/"pong"/a reply object.
 *  @return true when the terminal frame was not an error. */
bool
printResponses(int fd)
{
    for (;;) {
        std::string payload, error;
        const FrameStatus status = readFrame(fd, payload, &error);
        if (status == FrameStatus::Closed) {
            std::fprintf(stderr,
                         "occsim-client: connection closed before a "
                         "terminal frame\n");
            return false;
        }
        if (status == FrameStatus::Malformed)
            fatal("bad response frame: %s", error.c_str());

        obs::JsonValue value;
        if (!parseJson(payload, value, &error))
            fatal("bad response JSON: %s", error.c_str());
        const obs::JsonValue *type = value.find("type");
        const std::string kind =
            type != nullptr ? type->text : std::string();

        if (kind == "error") {
            const obs::JsonValue *message = value.find("message");
            std::fprintf(stderr, "occsim-client: server error: %s\n",
                         message != nullptr ? message->text.c_str()
                                            : "(no message)");
            return false;
        }
        if (kind == "result") {
            const obs::JsonValue *result = value.find("result");
            const obs::JsonValue *trace = value.find("trace");
            const obs::JsonValue *cached = value.find("cached");
            std::printf(
                "%s  t%llu c%-3llu  miss %.6f  traffic %.4f%s\n",
                trace != nullptr ? trace->text.c_str() : "?",
                static_cast<unsigned long long>(
                    value.find("trace_index") != nullptr
                        ? value.find("trace_index")->asU64()
                        : 0),
                static_cast<unsigned long long>(
                    value.find("config_index") != nullptr
                        ? value.find("config_index")->asU64()
                        : 0),
                result != nullptr ? numberField(*result, "miss_ratio")
                                  : 0.0,
                result != nullptr
                    ? numberField(*result, "traffic_ratio")
                    : 0.0,
                cached != nullptr && cached->boolean ? "  (cached)"
                                                     : "");
            continue;
        }
        if (kind == "done") {
            std::printf(
                "done: %llu cells, %llu cached, %llu computed, "
                "%.1f ms\n",
                static_cast<unsigned long long>(
                    value.find("cells") != nullptr
                        ? value.find("cells")->asU64()
                        : 0),
                static_cast<unsigned long long>(
                    value.find("cache_hits") != nullptr
                        ? value.find("cache_hits")->asU64()
                        : 0),
                static_cast<unsigned long long>(
                    value.find("cache_misses") != nullptr
                        ? value.find("cache_misses")->asU64()
                        : 0),
                numberField(value, "wall_ms"));
            return true;
        }
        // Single-frame replies (pong / stats / list / shutdown ack):
        // print the payload verbatim and stop.
        std::printf("%s\n", payload.c_str());
        return true;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unix_path;
    std::uint64_t tcp_port = 0;
    bool tcp = false;
    WireRequest request;
    std::vector<std::uint32_t> nets = {256, 512, 1024, 2048, 4096};
    std::uint32_t block = 16, sub = 0, word = 2;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--unix") == 0) {
            if (i + 1 >= argc)
                usage();
            unix_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tcp") == 0) {
            tcp_port = numArg(argc, argv, i);
            tcp = true;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                usage();
            request.traces.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--net") == 0) {
            if (i + 1 >= argc)
                usage();
            nets = parseList(argv[++i]);
        } else if (std::strcmp(argv[i], "--block") == 0) {
            block = static_cast<std::uint32_t>(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--sub") == 0) {
            sub = static_cast<std::uint32_t>(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--word") == 0) {
            word = static_cast<std::uint32_t>(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--max-refs") == 0) {
            request.maxRefs = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--priority") == 0) {
            request.priority =
                static_cast<int>(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--label") == 0) {
            if (i + 1 >= argc)
                usage();
            request.label = argv[++i];
        } else if (argv[i][0] == '-') {
            usage();
        } else if (request.op.empty()) {
            request.op = argv[i];
        } else {
            usage();
        }
    }
    if (request.op.empty())
        usage();
    if (unix_path.empty() && !tcp)
        usage();
    if (tcp_port > 65535)
        fatal("bad TCP port %llu",
              static_cast<unsigned long long>(tcp_port));

    if (request.op == "sweep") {
        if (request.traces.empty())
            fatal("sweep needs at least one --trace");
        for (const std::uint32_t net : nets) {
            request.configs.push_back(makeConfig(
                net, block, sub != 0 ? sub : block, word));
        }
    }

    std::string error;
    const int fd =
        !unix_path.empty()
            ? connectUnix(unix_path, &error)
            : connectTcp(static_cast<std::uint16_t>(tcp_port), &error);
    if (fd < 0)
        fatal("connect failed: %s", error.c_str());

    if (!writeFrame(fd, wireRequestJson(request)))
        fatal("request write failed (server gone?)");

    const bool ok = printResponses(fd);
    ::close(fd);
    return ok ? 0 : 1;
}
