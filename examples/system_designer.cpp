/**
 * @file
 * system_designer: the paper's metrics turned into system-level
 * answers. Given technology timings (cache access, memory first/next
 * word — Section 3.2's t_eff model, Section 4.3's nibble-mode
 * figures) this example sweeps the design grid on one architecture
 * suite and reports, for each design point:
 *
 *  - effective access time t_eff = t_cache(1-m) + t_mem*m;
 *  - how many processors a shared bus can carry before saturating
 *    (the multiprocessor motivation from the paper's introduction).
 *
 * Then it prints the winners under two design regimes: latency-first
 * (mainframe-like, pick min t_eff) and bus-first (multi-micro, pick
 * max processors subject to reasonable t_eff).
 *
 *   ./system_designer [arch 0-3] [net_size]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "mem/access_time.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

int
main(int argc, char **argv)
{
    const int arch_index = argc > 1 ? std::atoi(argv[1]) : 0;
    const std::uint32_t net =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 512;
    if (arch_index < 0 || arch_index > 3) {
        std::fprintf(stderr, "arch must be 0..3\n");
        return 1;
    }

    const Suite suite = suiteFor(static_cast<Arch>(arch_index));
    const std::uint32_t word = suite.profile.wordSize;

    // Technology assumptions (Bursky's nibble-mode memory parts).
    AccessTimeParams tech;
    tech.tCache = 100.0;    // ns, on-chip hit
    tech.tMemFirst = 460.0; // ns, first word incl. bus transaction
    tech.tMemNext = 160.0;  // ns, subsequent burst words
    const double t_processor = 250.0;  // ns per reference issued
    const double t_bus_word = 160.0;   // ns of bus occupancy per word

    std::printf("architecture %s, net %u bytes; t_cache=%.0fns, "
                "t_mem=%.0f+%.0fns/word (parallel sweep engine, "
                "%u threads)\n\n",
                suite.profile.name.c_str(), net, tech.tCache,
                tech.tMemFirst, tech.tMemNext,
                globalThreadPool().size());

    const auto configs = paperGrid(net, word);
    const SuiteRun run = runSuite(suite, configs);

    struct Row
    {
        const SweepResult *result;
        double teff;
        double processors;
    };
    std::vector<Row> rows;
    for (const SweepResult &result : run.average) {
        const std::uint32_t burst_words =
            result.config.subBlockSize / word;
        Row row;
        row.result = &result;
        row.teff = effectiveAccessTime(tech, result.missRatio,
                                       burst_words);
        row.processors = maxBusProcessors(result.trafficRatio,
                                          t_processor, t_bus_word);
        rows.push_back(row);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.teff < b.teff; });

    TableWriter table({"config", "gross", "miss", "traffic",
                       "t_eff (ns)", "max CPUs on bus"});
    for (const Row &row : rows) {
        table.addRow({row.result->config.shortName(),
                      std::to_string(row.result->grossBytes),
                      strfmt("%.4f", row.result->missRatio),
                      strfmt("%.4f", row.result->trafficRatio),
                      strfmt("%.1f", row.teff),
                      strfmt("%.1f", row.processors)});
    }
    table.print(std::cout);

    const Row &latency_win = rows.front();
    const Row &bus_win = *std::max_element(
        rows.begin(), rows.end(), [&](const Row &a, const Row &b) {
            // Bus-first: maximize processors among designs within
            // 1.5x of the best latency.
            const double limit = 1.5 * rows.front().teff;
            const double pa = a.teff <= limit ? a.processors : -1.0;
            const double pb = b.teff <= limit ? b.processors : -1.0;
            return pa < pb;
        });

    std::printf("\nlatency-first pick:  %s  (t_eff %.1f ns)\n",
                latency_win.result->config.shortName().c_str(),
                latency_win.teff);
    std::printf("bus-first pick:      %s  (%.1f processors, t_eff "
                "%.1f ns)\n",
                bus_win.result->config.shortName().c_str(),
                bus_win.processors, bus_win.teff);
    std::printf("\nThe two picks differ exactly when the sub-block "
                "tradeoff matters — the paper's thesis.\n");
    return 0;
}
