/**
 * @file
 * occsim-report: inspect and compare run manifests.
 *
 * Every occsim binary writes a JSON run manifest when OCCSIM_MANIFEST
 * names a path (see src/obs/manifest.hh). This CLI turns those files
 * back into something readable:
 *
 *   occsim-report <manifest.json>            summary: identity, sweeps,
 *                                            per-stage and per-engine
 *                                            breakdown tables
 *   occsim-report --diff <a.json> <b.json>   side-by-side stage/engine
 *                                            wall-time and throughput
 *                                            comparison (B vs A)
 *   occsim-report --check <manifest.json>    validate against the
 *                                            occsim.run_manifest/1
 *                                            schema; non-zero exit on
 *                                            any violation (this is
 *                                            the ctest validation of
 *                                            manifest emission)
 *   occsim-report bench [--check] [paths]    summarize BENCH_*.json
 *                                            benchmark records (a
 *                                            directory argument is
 *                                            scanned for them; the
 *                                            default is the current
 *                                            directory). --check exits
 *                                            non-zero when any record
 *                                            says bit_identical:false
 *                                            or gate_pass:false
 */

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;
using obs::JsonValue;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: occsim-report <manifest.json>\n"
                 "       occsim-report --diff <a.json> <b.json>\n"
                 "       occsim-report --check <manifest.json>\n"
                 "       occsim-report bench [--check] "
                 "[<dir-or-BENCH_*.json>...]\n");
    std::exit(1);
}

bool
loadManifest(const std::string &path, JsonValue &out)
{
    bool ok = false;
    const std::string content = obs::readTextFile(path, &ok);
    if (!ok) {
        std::fprintf(stderr, "occsim-report: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::string error;
    if (!parseJson(content, out, &error)) {
        std::fprintf(stderr, "occsim-report: %s: invalid JSON (%s)\n",
                     path.c_str(), error.c_str());
        return false;
    }
    return true;
}

/** One schema violation report, or empty when fine. */
void
expectMember(const JsonValue &object, const char *name,
             JsonValue::Kind kind, std::vector<std::string> &errors)
{
    const JsonValue *member = object.find(name);
    if (member == nullptr) {
        errors.push_back(strfmt("missing key \"%s\"", name));
        return;
    }
    if (member->kind != kind)
        errors.push_back(strfmt("key \"%s\" has the wrong type", name));
}

double
numberAt(const JsonValue &object, const char *name)
{
    const JsonValue *member = object.find(name);
    return member != nullptr && member->isNumber() ? member->number
                                                   : 0.0;
}

std::string
stringAt(const JsonValue &object, const char *name)
{
    const JsonValue *member = object.find(name);
    return member != nullptr && member->isString() ? member->text
                                                   : std::string();
}

/**
 * Validate the occsim.run_manifest/1 shape: identity block, traces,
 * sweeps with per-config routes, stages, engines, counters.
 */
std::vector<std::string>
validateManifest(const JsonValue &doc)
{
    std::vector<std::string> errors;
    if (!doc.isObject()) {
        errors.push_back("document is not a JSON object");
        return errors;
    }
    expectMember(doc, "schema", JsonValue::Kind::String, errors);
    if (const JsonValue *schema = doc.find("schema")) {
        if (schema->isString() &&
            schema->text != "occsim.run_manifest/1") {
            errors.push_back(
                strfmt("unknown schema \"%s\"", schema->text.c_str()));
        }
    }
    expectMember(doc, "binary", JsonValue::Kind::String, errors);
    expectMember(doc, "git", JsonValue::Kind::String, errors);
    expectMember(doc, "build", JsonValue::Kind::Object, errors);
    if (const JsonValue *build = doc.find("build")) {
        if (build->isObject()) {
            expectMember(*build, "type", JsonValue::Kind::String,
                         errors);
            expectMember(*build, "flags", JsonValue::Kind::String,
                         errors);
        }
    }
    expectMember(doc, "threads", JsonValue::Kind::Number, errors);
    expectMember(doc, "traces", JsonValue::Kind::Array, errors);
    if (const JsonValue *traces = doc.find("traces")) {
        for (const JsonValue &trace : traces->items) {
            expectMember(trace, "name", JsonValue::Kind::String,
                         errors);
            expectMember(trace, "refs", JsonValue::Kind::Number,
                         errors);
        }
    }
    expectMember(doc, "sweeps", JsonValue::Kind::Array, errors);
    if (const JsonValue *sweeps = doc.find("sweeps")) {
        for (const JsonValue &sweep : sweeps->items) {
            expectMember(sweep, "label", JsonValue::Kind::String,
                         errors);
            expectMember(sweep, "engine_mode", JsonValue::Kind::String,
                         errors);
            expectMember(sweep, "threads", JsonValue::Kind::Number,
                         errors);
            expectMember(sweep, "refs_simulated",
                         JsonValue::Kind::Number, errors);
            expectMember(sweep, "wall_ms", JsonValue::Kind::Number,
                         errors);
            expectMember(sweep, "sharded_runs",
                         JsonValue::Kind::Number, errors);
            expectMember(sweep, "shard_max_refs",
                         JsonValue::Kind::Number, errors);
            expectMember(sweep, "shard_min_refs",
                         JsonValue::Kind::Number, errors);
            expectMember(sweep, "fused_runs",
                         JsonValue::Kind::Number, errors);
            expectMember(sweep, "fused_configs",
                         JsonValue::Kind::Number, errors);
            // Sampled sweeps must carry their sampling parameters
            // and coverage: an estimate whose unit size, interval,
            // and measured-reference count are unrecorded cannot be
            // audited.
            const JsonValue *mode = sweep.find("engine_mode");
            const bool sampled_mode = mode != nullptr &&
                                      mode->isString() &&
                                      mode->text == "sampled";
            if (sampled_mode) {
                expectMember(sweep, "sampled_runs",
                             JsonValue::Kind::Number, errors);
                expectMember(sweep, "sample_unit_refs",
                             JsonValue::Kind::Number, errors);
                expectMember(sweep, "sample_interval_units",
                             JsonValue::Kind::Number, errors);
                expectMember(sweep, "sample_warmup_refs",
                             JsonValue::Kind::Number, errors);
                expectMember(sweep, "sample_units",
                             JsonValue::Kind::Number, errors);
                expectMember(sweep, "sample_measured_refs",
                             JsonValue::Kind::Number, errors);
                if (numberAt(sweep, "sample_units") < 1.0) {
                    errors.push_back(
                        "sampled sweep measured no units");
                }
                if (numberAt(sweep, "sample_measured_refs") < 1.0) {
                    errors.push_back(
                        "sampled sweep measured no references");
                }
            }
            expectMember(sweep, "configs", JsonValue::Kind::Array,
                         errors);
            if (const JsonValue *configs = sweep.find("configs")) {
                for (const JsonValue &route : configs->items) {
                    expectMember(route, "name",
                                 JsonValue::Kind::String, errors);
                    expectMember(route, "engine",
                                 JsonValue::Kind::String, errors);
                    // A sampled route's estimate must travel with
                    // its standard error (and vice versa).
                    const bool has_mean =
                        route.find("miss_ratio") != nullptr;
                    const bool has_se =
                        route.find("miss_stderr") != nullptr;
                    if (has_mean != has_se) {
                        errors.push_back(strfmt(
                            "config \"%s\" has a sampled estimate "
                            "without its stderr (or the reverse)",
                            stringAt(route, "name").c_str()));
                    }
                    if (has_mean) {
                        expectMember(route, "miss_ratio",
                                     JsonValue::Kind::Number, errors);
                        expectMember(route, "miss_stderr",
                                     JsonValue::Kind::Number, errors);
                    }
                }
            }
        }
    }
    // "serves" is optional (only server runs emit it), but when
    // present every record must be auditable: what was asked, how
    // many cells, and how the cache split them.
    if (const JsonValue *serves = doc.find("serves")) {
        if (!serves->isArray()) {
            errors.push_back("key \"serves\" has the wrong type");
        } else {
            for (const JsonValue &serve : serves->items) {
                expectMember(serve, "label", JsonValue::Kind::String,
                             errors);
                expectMember(serve, "op", JsonValue::Kind::String,
                             errors);
                expectMember(serve, "traces", JsonValue::Kind::Number,
                             errors);
                expectMember(serve, "configs", JsonValue::Kind::Number,
                             errors);
                expectMember(serve, "cells", JsonValue::Kind::Number,
                             errors);
                expectMember(serve, "cache_hits",
                             JsonValue::Kind::Number, errors);
                expectMember(serve, "cache_misses",
                             JsonValue::Kind::Number, errors);
                expectMember(serve, "wall_ms", JsonValue::Kind::Number,
                             errors);
                if (numberAt(serve, "cache_hits") +
                        numberAt(serve, "cache_misses") !=
                    numberAt(serve, "cells")) {
                    errors.push_back(strfmt(
                        "serve \"%s\": cache_hits + cache_misses != "
                        "cells",
                        stringAt(serve, "label").c_str()));
                }
            }
        }
    }
    expectMember(doc, "stages", JsonValue::Kind::Array, errors);
    if (const JsonValue *stages = doc.find("stages")) {
        for (const JsonValue &stage : stages->items) {
            expectMember(stage, "name", JsonValue::Kind::String,
                         errors);
            expectMember(stage, "calls", JsonValue::Kind::Number,
                         errors);
            expectMember(stage, "wall_ms", JsonValue::Kind::Number,
                         errors);
        }
    }
    expectMember(doc, "engines", JsonValue::Kind::Array, errors);
    expectMember(doc, "counters", JsonValue::Kind::Object, errors);
    return errors;
}

void
printSummary(const std::string &path, const JsonValue &doc)
{
    std::printf("manifest: %s\n", path.c_str());
    std::printf("binary:   %s\n", stringAt(doc, "binary").c_str());
    std::printf("git:      %s\n", stringAt(doc, "git").c_str());
    if (const JsonValue *build = doc.find("build")) {
        std::printf("build:    %s (%s)\n",
                    stringAt(*build, "type").c_str(),
                    stringAt(*build, "flags").c_str());
    }
    std::printf("threads:  %.0f\n\n", numberAt(doc, "threads"));

    if (const JsonValue *traces = doc.find("traces");
        traces != nullptr && !traces->items.empty()) {
        TableWriter table({"trace", "refs"});
        for (const JsonValue &trace : traces->items) {
            table.addRow({stringAt(trace, "name"),
                          strfmt("%.0f", numberAt(trace, "refs"))});
        }
        std::printf("traces:\n");
        table.print(std::cout);
        std::printf("\n");
    }

    if (const JsonValue *sweeps = doc.find("sweeps");
        sweeps != nullptr && !sweeps->items.empty()) {
        TableWriter table({"sweep", "mode", "traces", "configs",
                           "refs simulated", "wall ms", "sharded",
                           "shard skew", "fused cfgs"});
        for (const JsonValue &sweep : sweeps->items) {
            const JsonValue *configs = sweep.find("configs");
            // Shard imbalance: fullest / emptiest shard sub-trace
            // across the sweep's sharded runs. A large ratio means
            // hot sets made one worker drag the merge barrier.
            const double sharded = numberAt(sweep, "sharded_runs");
            const double min_refs =
                numberAt(sweep, "shard_min_refs");
            const double max_refs =
                numberAt(sweep, "shard_max_refs");
            std::string skew = "-";
            if (sharded > 0.0 && min_refs > 0.0)
                skew = strfmt("%.2fx", max_refs / min_refs);
            else if (sharded > 0.0)
                skew = "inf";
            table.addRow(
                {stringAt(sweep, "label"),
                 stringAt(sweep, "engine_mode"),
                 strfmt("%.0f", numberAt(sweep, "traces")),
                 strfmt("%zu", configs != nullptr
                                   ? configs->items.size()
                                   : std::size_t{0}),
                 strfmt("%.0f", numberAt(sweep, "refs_simulated")),
                 strfmt("%.2f", numberAt(sweep, "wall_ms")),
                 sharded > 0.0 ? strfmt("%.0f", sharded) : "-",
                 skew,
                 numberAt(sweep, "fused_runs") > 0.0
                     ? strfmt("%.0f", numberAt(sweep, "fused_configs"))
                     : "-"});
        }
        std::printf("sweeps:\n");
        table.print(std::cout);
        std::printf("\n");

        // Sampled sweeps additionally get their sampling parameters
        // and per-config estimate +-stderr columns. Exact sweeps
        // print nothing here, so existing output is unchanged.
        for (const JsonValue &sweep : sweeps->items) {
            if (numberAt(sweep, "sampled_runs") < 1.0)
                continue;
            std::printf(
                "sampling (%s): unit %.0f refs, interval %.0f "
                "units, warmup %.0f refs, %.0f units measured "
                "(%.0f refs)\n",
                stringAt(sweep, "label").c_str(),
                numberAt(sweep, "sample_unit_refs"),
                numberAt(sweep, "sample_interval_units"),
                numberAt(sweep, "sample_warmup_refs"),
                numberAt(sweep, "sample_units"),
                numberAt(sweep, "sample_measured_refs"));
            const JsonValue *configs = sweep.find("configs");
            if (configs == nullptr)
                continue;
            TableWriter est({"config", "miss ratio", "+-stderr",
                             "95% CI"});
            for (const JsonValue &route : configs->items) {
                if (route.find("miss_ratio") == nullptr)
                    continue;
                const double mean = numberAt(route, "miss_ratio");
                const double se = numberAt(route, "miss_stderr");
                est.addRow(
                    {stringAt(route, "name"),
                     strfmt("%.6f", mean), strfmt("%.6f", se),
                     strfmt("[%.6f, %.6f]", mean - 1.96 * se,
                            mean + 1.96 * se)});
            }
            est.print(std::cout);
            std::printf("\n");
        }
    }

    if (const JsonValue *serves = doc.find("serves");
        serves != nullptr && !serves->items.empty()) {
        TableWriter table({"request", "op", "traces", "configs",
                           "cells", "hits", "misses", "prio",
                           "wall ms"});
        for (const JsonValue &serve : serves->items) {
            table.addRow(
                {stringAt(serve, "label"), stringAt(serve, "op"),
                 strfmt("%.0f", numberAt(serve, "traces")),
                 strfmt("%.0f", numberAt(serve, "configs")),
                 strfmt("%.0f", numberAt(serve, "cells")),
                 strfmt("%.0f", numberAt(serve, "cache_hits")),
                 strfmt("%.0f", numberAt(serve, "cache_misses")),
                 strfmt("%.0f", numberAt(serve, "priority")),
                 strfmt("%.2f", numberAt(serve, "wall_ms"))});
        }
        std::printf("served requests:\n");
        table.print(std::cout);
        std::printf("\n");
    }

    if (const JsonValue *engines = doc.find("engines");
        engines != nullptr && !engines->items.empty()) {
        TableWriter table(
            {"engine", "refs", "wall ms", "Mrefs/s"});
        for (const JsonValue &engine : engines->items) {
            table.addRow(
                {stringAt(engine, "name"),
                 strfmt("%.0f", numberAt(engine, "refs")),
                 strfmt("%.2f", numberAt(engine, "wall_ms")),
                 strfmt("%.2f", numberAt(engine, "mrefs_per_sec"))});
        }
        std::printf("engine breakdown (wall time summed across "
                    "threads):\n");
        table.print(std::cout);
        std::printf("\n");
    }

    if (const JsonValue *stages = doc.find("stages");
        stages != nullptr && !stages->items.empty()) {
        TableWriter table({"stage", "calls", "wall ms"});
        for (const JsonValue &stage : stages->items) {
            table.addRow({stringAt(stage, "name"),
                          strfmt("%.0f", numberAt(stage, "calls")),
                          strfmt("%.2f", numberAt(stage, "wall_ms"))});
        }
        std::printf("stage breakdown:\n");
        table.print(std::cout);
    }
}

/** name -> (calls-or-refs, wall_ms, mrefs) for diffing. */
struct NamedRow
{
    std::string name;
    double a = 0.0, b = 0.0;
    bool inA = false, inB = false;
};

std::vector<NamedRow>
mergeRows(const JsonValue &a, const JsonValue &b, const char *array,
          const char *field)
{
    std::vector<NamedRow> rows;
    const auto scan = [&](const JsonValue &doc, bool is_a) {
        const JsonValue *items = doc.find(array);
        if (items == nullptr)
            return;
        for (const JsonValue &item : items->items) {
            const std::string name = stringAt(item, "name");
            NamedRow *row = nullptr;
            for (NamedRow &existing : rows) {
                if (existing.name == name) {
                    row = &existing;
                    break;
                }
            }
            if (row == nullptr) {
                rows.push_back(NamedRow{name, 0, 0, false, false});
                row = &rows.back();
            }
            const double value = numberAt(item, field);
            if (is_a) {
                row->a = value;
                row->inA = true;
            } else {
                row->b = value;
                row->inB = true;
            }
        }
    };
    scan(a, true);
    scan(b, false);
    return rows;
}

void
printDiffTable(const JsonValue &a, const JsonValue &b,
               const char *array, const char *field, const char *title)
{
    const std::vector<NamedRow> rows = mergeRows(a, b, array, field);
    if (rows.empty())
        return;
    TableWriter table({"name", "A", "B", "B/A"});
    for (const NamedRow &row : rows) {
        std::string ratio = "-";
        if (row.inA && row.inB && row.a > 0.0)
            ratio = strfmt("%.3f", row.b / row.a);
        table.addRow({row.name,
                      row.inA ? strfmt("%.2f", row.a) : "-",
                      row.inB ? strfmt("%.2f", row.b) : "-", ratio});
    }
    std::printf("%s:\n", title);
    table.print(std::cout);
    std::printf("\n");
}

/** -1 when @p name is absent or not a boolean, else 0 or 1. */
int
boolAt(const JsonValue &object, const char *name)
{
    const JsonValue *member = object.find(name);
    if (member == nullptr || !member->isBool())
        return -1;
    return member->boolean ? 1 : 0;
}

/** Expand a directory argument into its BENCH_*.json files (sorted);
 *  anything that is not a directory passes through as-is. */
std::vector<std::string>
expandBenchArg(const std::string &arg)
{
    DIR *dir = ::opendir(arg.c_str());
    if (dir == nullptr)
        return {arg};
    std::vector<std::string> files;
    while (const struct dirent *ent = ::readdir(dir)) {
        const std::string file = ent->d_name;
        if (file.rfind("BENCH_", 0) == 0 && file.size() > 11 &&
            file.compare(file.size() - 5, 5, ".json") == 0)
            files.push_back(arg + "/" + file);
    }
    ::closedir(dir);
    std::sort(files.begin(), files.end());
    return files;
}

/** "BENCH_fused.json" (with any directory prefix) -> "fused". */
std::string
benchName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (name.rfind("BENCH_", 0) == 0)
        name = name.substr(6);
    if (name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
        name = name.substr(0, name.size() - 5);
    return name;
}

/**
 * The BENCH_*.json trajectory as one table. The records are
 * heterogeneous — each bench names its own headline ratio (speedup
 * or overhead) and reference count, and the correctness/gate trailer
 * is only present where bench_reporter emitted it — so absent fields
 * print "-" rather than failing. With @p check, any record that
 * recorded bit_identical:false or gate_pass:false fails the run.
 */
int
benchReport(const std::vector<std::string> &args, bool check)
{
    std::vector<std::string> paths;
    for (const std::string &arg : args) {
        for (std::string &path : expandBenchArg(arg))
            paths.push_back(std::move(path));
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "occsim-report: no BENCH_*.json files found\n");
        return 1;
    }

    TableWriter table({"bench", "refs", "hw threads", "speedup",
                       "bit identical", "gate"});
    std::vector<std::string> failures;
    bool load_failed = false;
    for (const std::string &path : paths) {
        JsonValue doc;
        if (!loadManifest(path, doc)) {
            load_failed = true;
            continue;
        }
        const std::string name = benchName(path);

        double refs = numberAt(doc, "refs");
        if (refs == 0.0)
            refs = numberAt(doc, "refs_per_trace");
        const double hw_threads = numberAt(doc, "hw_threads");

        // The headline ratio: most benches record "speedup" (bigger
        // is better); the cross-check bench records "overhead"
        // (smaller is better), marked as such.
        std::string ratio = "-";
        if (doc.find("speedup") != nullptr)
            ratio = strfmt("%.2fx", numberAt(doc, "speedup"));
        else if (doc.find("overhead") != nullptr)
            ratio = strfmt("%.2fx overhead",
                           numberAt(doc, "overhead"));

        const int identical = boolAt(doc, "bit_identical");
        const int enforced = boolAt(doc, "gate_enforced");
        const int pass = boolAt(doc, "gate_pass");
        std::string gate = "-";
        if (pass == 0)
            gate = "FAIL";
        else if (pass == 1)
            gate = enforced == 1 ? "pass" : "pass (not enforced)";

        table.addRow({name, refs > 0.0 ? strfmt("%.0f", refs) : "-",
                      hw_threads > 0.0 ? strfmt("%.0f", hw_threads)
                                       : "-",
                      ratio,
                      identical < 0 ? "-"
                                    : (identical ? "yes" : "NO"),
                      gate});
        if (identical == 0)
            failures.push_back(
                strfmt("%s: bit_identical is false", name.c_str()));
        if (pass == 0)
            failures.push_back(
                strfmt("%s: gate_pass is false", name.c_str()));
    }
    std::printf("benchmarks:\n");
    table.print(std::cout);

    if (check) {
        for (const std::string &failure : failures) {
            std::fprintf(stderr, "occsim-report: %s\n",
                         failure.c_str());
        }
        if (failures.empty() && !load_failed)
            std::printf("\nall benchmark records identical and "
                        "within gate\n");
        return failures.empty() && !load_failed ? 0 : 1;
    }
    return load_failed ? 1 : 0;
}

int
diffManifests(const std::string &path_a, const std::string &path_b)
{
    JsonValue a, b;
    if (!loadManifest(path_a, a) || !loadManifest(path_b, b))
        return 1;
    std::printf("A: %s (%s, git %s)\n", path_a.c_str(),
                stringAt(a, "binary").c_str(),
                stringAt(a, "git").c_str());
    std::printf("B: %s (%s, git %s)\n\n", path_b.c_str(),
                stringAt(b, "binary").c_str(),
                stringAt(b, "git").c_str());
    printDiffTable(a, b, "stages", "wall_ms",
                   "stage wall time (ms)");
    printDiffTable(a, b, "engines", "wall_ms",
                   "engine wall time (ms)");
    printDiffTable(a, b, "engines", "mrefs_per_sec",
                   "engine throughput (Mrefs/s)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string mode = argv[1];

    if (mode == "--check") {
        if (argc != 3)
            usage();
        JsonValue doc;
        if (!loadManifest(argv[2], doc))
            return 1;
        const std::vector<std::string> errors = validateManifest(doc);
        if (!errors.empty()) {
            for (const std::string &error : errors) {
                std::fprintf(stderr, "occsim-report: %s: %s\n",
                             argv[2], error.c_str());
            }
            return 1;
        }
        std::printf("%s: valid occsim.run_manifest/1\n", argv[2]);
        return 0;
    }

    if (mode == "--diff") {
        if (argc != 4)
            usage();
        return diffManifests(argv[2], argv[3]);
    }

    if (mode == "bench") {
        bool check = false;
        std::vector<std::string> args;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--check") == 0)
                check = true;
            else if (argv[i][0] == '-')
                usage();
            else
                args.emplace_back(argv[i]);
        }
        if (args.empty())
            args.emplace_back(".");
        return benchReport(args, check);
    }

    if (mode[0] == '-')
        usage();
    if (argc == 3 && argv[2][0] != '-')
        return diffManifests(argv[1], argv[2]);
    if (argc != 2)
        usage();

    JsonValue doc;
    if (!loadManifest(argv[1], doc))
        return 1;
    printSummary(argv[1], doc);
    return 0;
}
