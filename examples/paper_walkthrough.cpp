/**
 * @file
 * paper_walkthrough: reproduce the abstract's headline sentence.
 *
 * "typical miss and traffic ratios for a 1024 byte (net size) cache,
 *  4-way set associative with 8 byte blocks are: PDP-11: .039, .156,
 *  Z8000: .015, .060, VAX 11: .080, .160, Sys/370: .244, .489"
 *
 * This example runs exactly that configuration over all four
 * substitute suites and prints our numbers next to the paper's,
 * then demonstrates the abstract's two qualitative claims — the
 * sub-block tradeoff and the usefulness of load forward — in a few
 * lines of API each. Start here to see the whole library in action.
 */

#include <cstdio>
#include <iostream>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

int
main()
{
    std::printf("The abstract's headline configuration: 1024 B net, "
                "4-way LRU, 8-byte blocks (8,8)\n\n");

    struct PaperRow
    {
        Arch arch;
        double miss, traffic;
    };
    const PaperRow paper[] = {
        {Arch::PDP11, 0.039, 0.156},
        {Arch::Z8000, 0.015, 0.060},
        {Arch::VAX11, 0.080, 0.160},
        {Arch::S370, 0.244, 0.489},
    };

    TableWriter table({"architecture", "paper miss/traffic",
                       "occsim miss/traffic"});
    for (const PaperRow &row : paper) {
        const Suite suite = suiteFor(row.arch);
        const CacheConfig config =
            makeConfig(1024, 8, 8, suite.profile.wordSize);
        const SuiteRun run = runSuite(suite, {config});
        table.addRow({suite.profile.name,
                      strfmt("%.3f / %.3f", row.miss, row.traffic),
                      strfmt("%.3f / %.3f", run.average[0].missRatio,
                             run.average[0].trafficRatio)});
    }
    table.print(std::cout);

    // Claim 2: "The use of sub-blocks allows tradeoffs between miss
    // ratio and traffic ratio for a given cache size."
    std::printf("\nsub-block tradeoff at 1024 B, 32-byte blocks "
                "(PDP-11 suite):\n");
    const Suite pdp = pdp11Suite();
    std::vector<CacheConfig> curve;
    for (const std::uint32_t sub : {32u, 8u, 2u})
        curve.push_back(makeConfig(1024, 32, sub, 2));
    const SuiteRun swept = runSuite(pdp, curve);
    for (const SweepResult &result : swept.average) {
        std::printf("  %-6s miss %.3f  traffic %.3f\n",
                    result.config.shortName().c_str(),
                    result.missRatio, result.trafficRatio);
    }

    // Claim 3: "Load forward is quite useful."
    std::printf("\nload-forward at 256 B, 16-byte blocks (Z8000 "
                "compiler traces):\n");
    CacheConfig demand = makeConfig(256, 16, 2, 2);
    CacheConfig lf = demand;
    lf.fetch = FetchPolicy::LoadForward;
    CacheConfig whole = makeConfig(256, 16, 16, 2);
    const SuiteRun lf_run =
        runSuite(z8000CompilerSuite(), {whole, lf, demand});
    for (const SweepResult &result : lf_run.average) {
        std::printf("  %-8s miss %.3f  traffic %.3f\n",
                    result.config.shortName().c_str(),
                    result.missRatio, result.trafficRatio);
    }
    std::printf("\n(LF keeps nearly the whole-block miss ratio at a "
                "fraction of its traffic — the paper's Table 8.)\n");
    return 0;
}
