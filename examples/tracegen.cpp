/**
 * @file
 * tracegen: generate address traces to files.
 *
 * Two generators are available:
 *  - the OC-1 program library (real executed programs), selected by
 *    program name;
 *  - the named suite traces that reproduce the paper's Tables 2-5
 *    workloads, selected as <arch>/<trace> (e.g. pdp11/ROFF).
 *
 * Usage:
 *   tracegen list
 *   tracegen <program-name>  [-n refs] [-word 2|4] [-o file] [-text|-z]
 *   tracegen <arch>/<trace>   [-n refs] [-o file] [-text|-z]
 *
 * Output defaults to the fixed-record binary format (.otb); -z writes
 * the delta-compressed format (.otd), -text the dinero-style text
 * format (.din).
 *
 * arch is one of: pdp11, z8000, z8000cc, vax11, s370.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: tracegen list\n"
                 "       tracegen <program|arch/trace> [-n refs] "
                 "[-word 2|4] [-o file] [-text]\n");
    std::exit(1);
}

Suite
suiteByName(const std::string &name)
{
    if (name == "pdp11")
        return pdp11Suite();
    if (name == "z8000")
        return z8000Suite();
    if (name == "z8000cc")
        return z8000CompilerSuite();
    if (name == "vax11")
        return vax11Suite();
    if (name == "s370")
        return s370Suite();
    fatal("unknown architecture '%s'", name.c_str());
}

void
list()
{
    std::printf("programs:\n");
    for (const std::string &name : programNames())
        std::printf("  %s\n", name.c_str());
    std::printf("suite traces:\n");
    for (const char *arch :
         {"pdp11", "z8000", "z8000cc", "vax11", "s370"}) {
        const Suite suite = suiteByName(arch);
        for (const WorkloadSpec &spec : suite.traces) {
            std::printf("  %s/%-8s %-26s %s\n", arch,
                        spec.name.c_str(), spec.programId.c_str(),
                        spec.description.c_str());
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string what = argv[1];
    if (what == "list") {
        list();
        return 0;
    }

    std::uint64_t refs = 1000000;
    std::uint32_t word = 2;
    std::string out_path;
    bool text_format = false;
    bool compressed = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-n" && i + 1 < argc) {
            if (!parseU64(argv[++i], refs) || refs == 0)
                fatal("bad -n value");
        } else if (arg == "-word" && i + 1 < argc) {
            word = static_cast<std::uint32_t>(std::atoi(argv[++i]));
            if (word != 2 && word != 4)
                fatal("-word must be 2 or 4");
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "-text") {
            text_format = true;
        } else if (arg == "-z") {
            compressed = true;
        } else {
            usage();
        }
    }

    VectorTrace trace;
    const std::size_t slash = what.find('/');
    if (slash != std::string::npos) {
        const Suite suite = suiteByName(what.substr(0, slash));
        const std::string trace_name = what.substr(slash + 1);
        const WorkloadSpec *found = nullptr;
        for (const WorkloadSpec &spec : suite.traces) {
            if (spec.name == trace_name)
                found = &spec;
        }
        if (found == nullptr)
            fatal("no trace '%s' in that suite", trace_name.c_str());
        trace = buildTrace(*found, refs);
    } else {
        MachineConfig machine = word == 2 ? MachineConfig::word16()
                                          : MachineConfig::word32();
        Program program = assemble(programByName(what), machine);
        VmTraceSource source(std::move(program), what, true);
        trace = collect(source, refs);
    }

    printProfile(std::cout, what, profileTrace(trace));
    if (out_path.empty()) {
        out_path = split(what, '/').back() +
                   (text_format ? ".din" : compressed ? ".otd"
                                                      : ".otb");
    }
    if (text_format)
        writeTextTrace(trace, out_path);
    else if (compressed)
        writeCompressedTrace(trace, out_path);
    else
        writeBinaryTrace(trace, out_path);
    std::printf("wrote %zu references to %s\n", trace.size(),
                out_path.c_str());
    return 0;
}
