/**
 * @file
 * occsim-fuzz: the differential property-fuzz driver. Generates
 * seeded random (cache config, adversarial trace) pairs and runs
 * every engine occsim owns over each — the naive ReferenceCache
 * oracle, the direct Cache, the parallel routing layer with and
 * without the single-pass fast path, and the standalone single-pass
 * engine — diffing every counter and derived metric exactly. On a
 * mismatch the case is auto-shrunk (trace bisection + config
 * simplification) and printed as a replayable case seed plus a
 * paste-ready standalone test body.
 *
 * Usage:
 *   occsim-fuzz [options]
 *     --cases N      cases to run                  (default 500)
 *     --seed N       master seed                   (default fixed)
 *     --refs N       references per trace          (default 768)
 *     --case-seed N  replay one case by seed and exit
 *     --verbose      print every generated case
 *     --self-test    also verify the harness catches an injected
 *                    off-by-one (perturbed oracle must mismatch and
 *                    shrink to a tiny repro)
 *     --sample-coverage
 *                    run the statistical-sampling CI-coverage check
 *                    instead of the exact differential loop: each
 *                    case diffs the sampling engine's 95% interval
 *                    against the exact miss ratio, and the run
 *                    passes when >= 90% of cases are covered
 *                    (check/sample_check.hh). --cases/--seed/--refs
 *                    override the coverage defaults when given.
 *     --mesi         run the multicore coherency differential loop
 *                    instead of the single-cache one: each case runs
 *                    a random MESI-subset scenario (2..4 cores,
 *                    symmetric or per-core shapes) over a parallel
 *                    workload or a core-stamped adversarial trace,
 *                    through both the coherent engine and the naive
 *                    flat-snooping oracle, diffing every per-core
 *                    counter and every bus counter
 *                    (check/coherence_check.hh). --cases/--seed/
 *                    --refs override the defaults when given.
 *     --serve-proto  run the sweep-server protocol-robustness check
 *                    instead of the differential loop: seeded
 *                    adversarial connections (garbage, truncated
 *                    frames, oversized lengths, malformed JSON,
 *                    abrupt disconnects) against a live in-process
 *                    server, which must reject each cleanly, never
 *                    crash, and never leak a connection slot
 *                    (check/serve_check.hh). --cases/--seed override
 *                    the defaults when given.
 *
 * Exit status: 0 on a clean run, 1 on any mismatch or a failed
 * self-test.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "check/coherence_check.hh"
#include "check/fuzz.hh"
#include "check/sample_check.hh"
#include "check/serve_check.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace occsim;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: occsim-fuzz [--cases N] [--seed N] [--refs N]\n"
                 "                   [--case-seed N] [--verbose] "
                 "[--self-test]\n"
                 "                   [--sample-coverage] "
                 "[--serve-proto] [--mesi]\n");
    std::exit(1);
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    std::uint64_t value = 0;
    if (!parseU64(argv[++i], value))
        fatal("bad numeric argument '%s'", argv[i]);
    return value;
}

/**
 * Prove the harness has teeth: perturb the oracle's miss count by
 * one and require the mismatch to be caught and shrunk small.
 * @return true when the injected fault was detected.
 */
bool
selfTest(const FuzzOptions &base)
{
    FuzzOptions options = base;
    options.cases = 1;
    options.diff.perturbReference = [](ReferenceStats &stats) {
        if (stats.misses > 0)
            --stats.misses;
        else
            ++stats.misses;
    };
    const FuzzSummary summary = runFuzz(options);
    if (summary.passed()) {
        std::cout << "self-test FAILED: injected off-by-one was not "
                     "detected\n";
        return false;
    }
    std::cout << "self-test ok: injected off-by-one caught and "
                 "shrunk to "
              << summary.shrunk.refs.size() << " refs\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions options;
    options.out = &std::cout;
    bool self_test = false;
    bool replay = false;
    bool sample_coverage = false;
    bool serve_proto = false;
    bool mesi = false;
    std::uint64_t case_seed = 0;
    bool cases_set = false, seed_set = false, refs_set = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cases") == 0) {
            options.cases = numArg(argc, argv, i);
            cases_set = true;
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            options.seed = numArg(argc, argv, i);
            seed_set = true;
        } else if (std::strcmp(argv[i], "--refs") == 0) {
            options.refsPerCase =
                static_cast<std::size_t>(numArg(argc, argv, i));
            refs_set = true;
        } else if (std::strcmp(argv[i], "--case-seed") == 0) {
            replay = true;
            case_seed = numArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--verbose") == 0)
            options.verbose = true;
        else if (std::strcmp(argv[i], "--self-test") == 0)
            self_test = true;
        else if (std::strcmp(argv[i], "--sample-coverage") == 0)
            sample_coverage = true;
        else if (std::strcmp(argv[i], "--serve-proto") == 0)
            serve_proto = true;
        else if (std::strcmp(argv[i], "--mesi") == 0)
            mesi = true;
        else
            usage();
    }

    if (mesi) {
        CoherenceFuzzOptions coherence;
        coherence.out = &std::cout;
        coherence.verbose = options.verbose;
        if (cases_set)
            coherence.cases = options.cases;
        if (seed_set)
            coherence.seed = options.seed;
        if (refs_set)
            coherence.refsPerCase = options.refsPerCase;
        const CoherenceFuzzSummary summary =
            runCoherenceFuzz(coherence);
        if (summary.passed()) {
            std::cout << "coherence fuzz: "
                      << summary.casesRun
                      << " cases, engine and oracle agree\n";
        }
        return summary.passed() ? 0 : 1;
    }

    if (serve_proto) {
        ServeCheckOptions check;
        check.out = &std::cout;
        check.verbose = options.verbose;
        if (cases_set)
            check.cases = options.cases;
        if (seed_set)
            check.seed = options.seed;
        const ServeCheckSummary summary = runServeCheck(check);
        return summary.passed() ? 0 : 1;
    }

    if (sample_coverage) {
        SampleCoverageOptions coverage;
        coverage.out = &std::cout;
        coverage.verbose = options.verbose;
        if (cases_set)
            coverage.cases = options.cases;
        if (seed_set)
            coverage.seed = options.seed;
        if (refs_set)
            coverage.refs = options.refsPerCase;
        const SampleCoverageSummary summary =
            runSampleCoverage(coverage);
        return summary.passed() ? 0 : 1;
    }

    if (replay) {
        const FuzzSummary summary = replayFuzzCase(case_seed, options);
        return summary.passed() ? 0 : 1;
    }

    const FuzzSummary summary = runFuzz(options);
    bool ok = summary.passed();
    if (ok && self_test)
        ok = selfTest(options);
    return ok ? 0 : 1;
}
