/**
 * @file
 * cachesim: a dineroIV-style command-line trace-driven cache
 * simulator over occsim. Reads a trace file (text "din" or occsim
 * binary format, auto-detected), simulates one cache configuration,
 * and prints the full statistics block.
 *
 * Usage:
 *   cachesim <trace-file> [options]
 *     -size N        net cache size in bytes        (default 1024)
 *     -block N       block size in bytes            (default 16)
 *     -sub N         sub-block size in bytes        (default block)
 *     -assoc N       associativity                  (default 4)
 *     -word N        data-path word size in bytes   (default 2)
 *     -repl lru|fifo|random                         (default lru)
 *     -fetch demand|lf|lfo                          (default demand)
 *     -limit N       max references                 (default all)
 *     -ro            drop data writes before simulation
 *     -sweep         ignore -size/-block/-sub; run the paper's whole
 *                    design grid at net sizes 64/256/1024 and print
 *                    CSV rows (net,block,sub,gross,miss,traffic,
 *                    nibble) for plotting
 *     --manifest P   write a run manifest (JSON) to path P at exit
 *                    (equivalent to OCCSIM_MANIFEST=P; inspect it
 *                    with occsim-report)
 *
 * Generate input files with the tracegen example.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "obs/manifest.hh"
#include "trace/filters.hh"
#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: cachesim <trace-file> [-size N] [-block N] "
                 "[-sub N] [-assoc N]\n"
                 "                [-word N] [-repl lru|fifo|random] "
                 "[-fetch demand|lf|lfo]\n"
                 "                [-limit N] [-ro] [-sweep] "
                 "[--manifest <path>]\n");
    std::exit(1);
}

std::uint32_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    std::uint64_t value = 0;
    if (!parseU64(argv[++i], value) || value == 0)
        fatal("bad numeric argument '%s'", argv[i]);
    return static_cast<std::uint32_t>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-')
        usage();
    const std::string path = argv[1];

    CacheConfig config;
    config.netSize = 1024;
    config.blockSize = 16;
    config.subBlockSize = 0;  // default: same as block
    config.assoc = 4;
    config.wordSize = 2;
    std::uint64_t limit = 0;
    bool read_only = false;
    bool sweep = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-size") {
            config.netSize = numArg(argc, argv, i);
        } else if (arg == "-block") {
            config.blockSize = numArg(argc, argv, i);
        } else if (arg == "-sub") {
            config.subBlockSize = numArg(argc, argv, i);
        } else if (arg == "-assoc") {
            config.assoc = numArg(argc, argv, i);
        } else if (arg == "-word") {
            config.wordSize = numArg(argc, argv, i);
        } else if (arg == "-limit") {
            limit = numArg(argc, argv, i);
        } else if (arg == "-ro") {
            read_only = true;
        } else if (arg == "-sweep") {
            sweep = true;
        } else if (arg == "--manifest") {
            if (i + 1 >= argc)
                usage();
            obs::setManifestPath(argv[++i]);
        } else if (arg == "-repl") {
            if (i + 1 >= argc)
                usage();
            const std::string value = argv[++i];
            if (value == "lru")
                config.replacement = ReplacementPolicy::LRU;
            else if (value == "fifo")
                config.replacement = ReplacementPolicy::FIFO;
            else if (value == "random")
                config.replacement = ReplacementPolicy::Random;
            else
                usage();
        } else if (arg == "-fetch") {
            if (i + 1 >= argc)
                usage();
            const std::string value = argv[++i];
            if (value == "demand")
                config.fetch = FetchPolicy::Demand;
            else if (value == "lf")
                config.fetch = FetchPolicy::LoadForward;
            else if (value == "lfo")
                config.fetch = FetchPolicy::LoadForwardOptimized;
            else
                usage();
        } else {
            usage();
        }
    }
    if (config.subBlockSize == 0)
        config.subBlockSize = config.blockSize;

    VectorTrace trace = readTrace(path);
    printProfile(std::cout, path, profileTrace(trace));
    std::printf("\n");

    if (sweep) {
        std::vector<CacheConfig> configs;
        for (const std::uint32_t net : {64u, 256u, 1024u}) {
            const auto grid = paperGrid(net, config.wordSize);
            configs.insert(configs.end(), grid.begin(), grid.end());
        }
        SweepRequest request;
        if (read_only) {
            DropWritesFilter filtered(trace);
            request.traces.push_back(std::make_shared<VectorTrace>(
                collect(filtered)));
        } else {
            request.traces.push_back(
                std::make_shared<VectorTrace>(std::move(trace)));
        }
        request.configs = configs;
        request.maxRefs = limit;
        request.label = "cachesim:sweep";
        const SweepReport report = runSweep(request);
        TableWriter table({"net", "block", "sub", "gross", "miss",
                           "traffic", "nibble"});
        for (const SweepResult &result : report.perTrace.front()) {
            table.addRow(
                {strfmt("%u", result.config.netSize),
                 strfmt("%u", result.config.blockSize),
                 strfmt("%u", result.config.subBlockSize),
                 strfmt("%llu",
                        (unsigned long long)result.grossBytes),
                 strfmt("%.6f", result.missRatio),
                 strfmt("%.6f", result.trafficRatio),
                 strfmt("%.6f", result.nibbleTrafficRatio)});
        }
        table.printCsv(std::cout);
        return 0;
    }

    Cache cache(config);
    std::printf("cache: %s (gross %llu bytes)\n\n",
                config.fullName().c_str(),
                static_cast<unsigned long long>(
                    cache.geometry().grossBytes()));

    if (read_only) {
        DropWritesFilter filtered(trace);
        cache.run(filtered, limit);
    } else {
        cache.run(trace, limit);
    }
    cache.stats().dump(std::cout);
    return 0;
}
