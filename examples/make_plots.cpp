/**
 * @file
 * make_plots: write gnuplot data and scripts that redraw the paper's
 * Figures 1-9 from occsim's measurements — miss ratio (y) versus
 * traffic ratio (x) scatter with curves of constant block size, one
 * output pair per figure.
 *
 *   ./make_plots [output-dir]      (default "plots")
 *   cd plots && gnuplot all.gp     -> fig1.png ... fig9.png
 *
 * Each figN.dat has blocks of rows (one per sub-block size) separated
 * by blank lines, one block per (net size, block size) curve, so
 * gnuplot's `index`/`every` can draw the constant-block lines exactly
 * like the solid curves in the paper.
 */

#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "harness/experiment.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace occsim;

namespace {

struct FigureSpec
{
    int number;
    Arch arch;
    std::vector<std::uint32_t> nets;
    bool nibble;
};

void
writeFigure(const std::string &dir, const FigureSpec &spec)
{
    const Suite suite = suiteFor(spec.arch);
    const std::uint32_t word = suite.profile.wordSize;

    std::vector<CacheConfig> configs;
    for (const std::uint32_t net : spec.nets) {
        const auto grid = paperGrid(net, word);
        configs.insert(configs.end(), grid.begin(), grid.end());
    }
    const SuiteRun run = runSuite(suite, configs);

    const std::string dat_path =
        strfmt("%s/fig%d.dat", dir.c_str(), spec.number);
    std::FILE *dat = std::fopen(dat_path.c_str(), "w");
    if (!dat)
        fatal("cannot write '%s'", dat_path.c_str());
    std::fprintf(dat, "# Figure %d: %s, nets", spec.number,
                 suite.profile.name.c_str());
    for (const std::uint32_t net : spec.nets)
        std::fprintf(dat, " %u", net);
    std::fprintf(dat, "%s\n# traffic miss net block sub\n",
                 spec.nibble ? " (nibble-mode)" : "");

    // Group into constant-block curves.
    std::uint64_t prev_key = ~0ull;
    for (const SweepResult &result : run.average) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(result.config.netSize) << 32) |
            result.config.blockSize;
        if (key != prev_key && prev_key != ~0ull)
            std::fprintf(dat, "\n");
        prev_key = key;
        std::fprintf(dat, "%.6f %.6f %u %u %u\n",
                     spec.nibble ? result.nibbleTrafficRatio
                                 : result.trafficRatio,
                     result.missRatio, result.config.netSize,
                     result.config.blockSize,
                     result.config.subBlockSize);
    }
    std::fclose(dat);
    std::printf("wrote %s (%zu points)\n", dat_path.c_str(),
                run.average.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "plots";
    ::mkdir(dir.c_str(), 0755);

    const std::vector<FigureSpec> figures = {
        {1, Arch::PDP11, {32, 128, 512}, false},
        {2, Arch::PDP11, {64, 256, 1024}, false},
        {3, Arch::Z8000, {32, 128, 512}, false},
        {4, Arch::Z8000, {64, 256, 1024}, false},
        {5, Arch::VAX11, {64, 256, 1024}, false},
        {6, Arch::S370, {64, 256, 1024}, false},
        {7, Arch::PDP11, {32, 128, 512}, true},
        {8, Arch::PDP11, {64, 256, 1024}, true},
    };
    for (const FigureSpec &spec : figures)
        writeFigure(dir, spec);

    // One gnuplot script for everything.
    const std::string gp_path = dir + "/all.gp";
    std::FILE *gp = std::fopen(gp_path.c_str(), "w");
    if (!gp)
        fatal("cannot write '%s'", gp_path.c_str());
    std::fprintf(gp,
                 "# gnuplot script regenerating the paper's figures\n"
                 "set terminal pngcairo size 800,600\n"
                 "set key outside right\n"
                 "set grid\n");
    for (const FigureSpec &spec : figures) {
        std::fprintf(gp,
                     "set output 'fig%d.png'\n"
                     "set title 'Figure %d: miss ratio vs %straffic "
                     "ratio'\n"
                     "set xlabel 'traffic ratio'\n"
                     "set ylabel 'miss ratio'\n"
                     "plot for [i=0:*] 'fig%d.dat' index i using 1:2 "
                     "with linespoints title columnheader(1)\n",
                     spec.number, spec.number,
                     spec.nibble ? "nibble-scaled " : "", spec.number);
    }
    std::fclose(gp);
    std::printf("wrote %s; run `gnuplot all.gp` in %s/\n",
                gp_path.c_str(), dir.c_str());
    return 0;
}
