/**
 * @file
 * Split I/D vs unified caches over the paper's grid — the first item
 * on the paper's further-studies list ("partitioning instruction and
 * data caches").
 *
 * For each net size, every Table 6 (block, sub-block) design point
 * is priced twice through one runSweep() call: once unified, once as
 * an even split pair of the same total size (partition is a
 * first-class CacheConfig axis, so both organisations ride the same
 * grid and the routing layer picks the engine per config). The table
 * reports the suite-average miss and traffic ratios side by side —
 * the split pair loses the ability to balance I and D occupancy
 * dynamically, so it typically gives up a little miss ratio at equal
 * total size.
 *
 *   ./split_vs_unified [net_size...]    (defaults: 512 1024 2048)
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "occsim.hh"

using namespace occsim;

int
main(int argc, char **argv)
{
    std::vector<std::uint32_t> nets;
    for (int i = 1; i < argc; ++i)
        nets.push_back(static_cast<std::uint32_t>(std::atoi(argv[i])));
    if (nets.empty())
        nets = {512, 1024, 2048};

    SweepRequest request;
    request.traces = buildSuiteTraces(pdp11Suite());
    request.label = "split-vs-unified";

    // The grid: each paper design point, unified then split. The
    // smallest nets skip points whose halves would be under one
    // block (evenSplitHalf needs net >= 2 * block).
    for (const std::uint32_t net : nets) {
        for (const CacheConfig &point : paperGrid(net, 2)) {
            request.configs.push_back(point);
            if (point.netSize >= 2 * point.blockSize) {
                CacheConfig split = point;
                split.partition = CachePartition::SplitID;
                request.configs.push_back(split);
            }
        }
    }

    const SweepReport report = runSweep(request);

    std::printf("PDP-11 suite average, unified vs even I/D split "
                "(same total size)\n\n");
    std::printf("%-22s %10s %10s %12s %12s\n", "config", "miss",
                "miss", "traffic", "traffic");
    std::printf("%-22s %10s %10s %12s %12s\n", "", "unified", "split",
                "unified", "split");
    for (std::size_t c = 0; c < request.configs.size(); ++c) {
        const CacheConfig &config = request.configs[c];
        if (config.partition != CachePartition::Unified)
            continue;
        const SweepResult &unified = report.average[c];
        // The split twin, when the geometry allowed one, is the very
        // next grid entry.
        const SweepResult *split = nullptr;
        if (c + 1 < request.configs.size() &&
            request.configs[c + 1].partition ==
                CachePartition::SplitID)
            split = &report.average[c + 1];
        if (split == nullptr) {
            std::printf("%-22s %10.4f %10s %12.4f %12s\n",
                        config.fullName().c_str(), unified.missRatio,
                        "-", unified.trafficRatio, "-");
            continue;
        }
        std::printf("%-22s %10.4f %10.4f %12.4f %12.4f\n",
                    config.fullName().c_str(), unified.missRatio,
                    split->missRatio, unified.trafficRatio,
                    split->trafficRatio);
    }
    std::printf("\n(split = two caches of half the net size each, "
                "instructions one side, data the other;\n every row "
                "is priced by the same runSweep call, partition being "
                "an ordinary config axis)\n");
    return 0;
}
