/**
 * @file
 * occsim quickstart: build a small on-chip cache, run a workload
 * trace through it, and read the two metrics the paper is about —
 * miss ratio and traffic ratio.
 *
 *   ./quickstart [net_size] [block] [sub_block]
 *
 * Defaults reproduce the paper's headline PDP-11 design point: a
 * 1024-byte 4-way LRU cache with 8-byte blocks and 8-byte sub-blocks
 * (Abstract: miss 0.039, traffic 0.156 on the PDP-11 traces).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

// The umbrella header is the whole supported surface — nothing else
// needs to be included.
#include "occsim.hh"

using namespace occsim;

int
main(int argc, char **argv)
{
    const std::uint32_t net =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
    const std::uint32_t block =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
    const std::uint32_t sub =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8;

    // 1. Describe the cache. makeConfig gives the paper's defaults:
    //    4-way set associative, LRU replacement, demand fetch.
    const CacheConfig config = makeConfig(net, block, sub,
                                          /*word_size=*/2);
    Cache cache(config);

    std::printf("cache: %s\n", config.fullName().c_str());
    std::printf("gross size (tags + valid bits + data): %llu bytes\n\n",
                static_cast<unsigned long long>(
                    cache.geometry().grossBytes()));

    // 2. Build a workload trace. We use the first PDP-11 trace of the
    //    suite (OPSYS); any TraceSource works here, including traces
    //    read from files (see the cachesim example).
    const Suite suite = pdp11Suite();
    VectorTrace trace = buildTrace(suite.traces.front());
    std::printf("trace: %s (%s), %zu references\n\n",
                suite.traces.front().name.c_str(),
                suite.traces.front().description.c_str(),
                trace.size());

    // 3. Run and inspect.
    cache.run(trace);
    cache.stats().dump(std::cout);

    std::printf("\nmiss ratio    %.4f\n", cache.stats().missRatio());
    std::printf("traffic ratio %.4f\n", cache.stats().trafficRatio());
    return 0;
}
