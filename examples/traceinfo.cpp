/**
 * @file
 * traceinfo: locality analysis of a trace file — the characterization
 * a cache designer runs before choosing parameters.
 *
 *   traceinfo <trace-file> [-limit N]
 *
 * Prints the reference mix and footprint, the LRU stack-distance
 * profile (hit ratio of every fully-associative capacity in one
 * pass), and a working-set curve (distinct 16-byte blocks per window
 * of references), for instruction and data streams separately.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "multi/stack_analyzer.hh"
#include "multi/working_set.hh"
#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

void
workingSetCurve(const VectorTrace &trace)
{
    std::printf("\nworking set (distinct 16-byte blocks per window):\n");
    const WorkingSetAnalyzer all(16);
    const WorkingSetAnalyzer icode(
        16, WorkingSetAnalyzer::Select::InstructionsOnly);
    const WorkingSetAnalyzer data(
        16, WorkingSetAnalyzer::Select::DataOnly);

    std::vector<std::uint64_t> windows;
    for (const std::uint64_t window :
         {1000ull, 10000ull, 100000ull, 1000000ull}) {
        if (window <= trace.size())
            windows.push_back(window);
    }
    const auto total = all.profile(trace, windows);
    const auto inst = icode.profile(trace, windows);
    const auto dat = data.profile(trace, windows);

    // Per-kind windows run over the filtered sub-stream, so a stream
    // shorter than the window has no complete window ("-").
    auto cell = [](const WorkingSetPoint &point) {
        return point.meanBytes > 0.0
                   ? strfmt("%.0f B", point.meanBytes)
                   : std::string("-");
    };
    TableWriter table({"window", "instructions", "data", "total",
                       "worst window"});
    for (std::size_t i = 0; i < windows.size(); ++i) {
        table.addRow({strfmt("%llu", (unsigned long long)windows[i]),
                      cell(inst[i]), cell(dat[i]), cell(total[i]),
                      strfmt("%llu B",
                             (unsigned long long)(total[i].maxBlocks *
                                                  16))});
    }
    table.print(std::cout);
    std::printf("suggested cache (covers mean 100k-ref working "
                "set): %llu bytes\n",
                (unsigned long long)all.suggestedCacheBytes(
                    trace, std::min<std::uint64_t>(100000,
                                                   trace.size())));
}

void
stackProfile(const VectorTrace &trace)
{
    StackAnalyzer analyzer(16, 4096);
    analyzer.processTrace(trace);
    std::printf("\nfully-associative LRU hit ratios (16-byte "
                "blocks):\n");
    TableWriter table({"capacity", "bytes", "miss ratio"});
    for (const std::uint32_t blocks : {4u, 16u, 64u, 256u, 1024u}) {
        table.addRow({strfmt("%u blocks", blocks),
                      strfmt("%u", blocks * 16),
                      strfmt("%.4f",
                             analyzer.missRatioForCapacity(blocks))});
    }
    table.print(std::cout);
    std::printf("distinct blocks: %llu (compulsory floor %.4f)\n",
                static_cast<unsigned long long>(
                    analyzer.distinctBlocks()),
                static_cast<double>(analyzer.distinctBlocks()) /
                    static_cast<double>(analyzer.refs()));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: traceinfo <trace-file> "
                             "[-limit N]\n");
        return 1;
    }
    std::uint64_t limit = 0;
    if (argc >= 4 && std::string(argv[2]) == "-limit")
        parseU64(argv[3], limit);

    VectorTrace full = readTrace(argv[1]);
    VectorTrace trace = full;
    if (limit != 0 && limit < full.size()) {
        trace = VectorTrace(full.name());
        for (std::size_t i = 0; i < limit; ++i)
            trace.append(full[i]);
    }

    printProfile(std::cout, argv[1], profileTrace(trace));
    stackProfile(trace);
    workingSetCurve(trace);
    return 0;
}
