/**
 * @file
 * The paper's "minimum cache" proposal (Section 2.2): a 64-byte
 * cache with 2-word blocks and 1-word sub-blocks that "can cut memory
 * references and bus traffic by one-third", costing well under 200
 * bytes of RAM. This example evaluates the minimum cache on all four
 * architecture suites and reports the reduction in references
 * (1 - miss ratio) and in bus traffic (1 - traffic ratio), plus the
 * RAM cost from the gross-size model — including the paper's VAX
 * observation that the 64-byte minimum cache needs only ~95 bytes of
 * RAM at 8,4 geometry.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

int
main()
{
    std::printf("the minimum cache (Section 2.2): 64 bytes net, "
                "block = 2 words, sub-block = 1 word\n\n");

    TableWriter table({"architecture", "config", "gross", "miss",
                       "traffic", "refs cut", "traffic cut"});
    for (const Arch arch : kAllArchs) {
        const Suite suite = suiteFor(arch);
        const std::uint32_t word = suite.profile.wordSize;
        const CacheConfig config =
            makeConfig(64, 2 * word, word, word);

        const SuiteRun run = runSuite(suite, {config});
        const SweepResult &result = run.average.front();
        table.addRow(
            {suite.profile.name, config.shortName(),
             std::to_string(result.grossBytes),
             strfmt("%.4f", result.missRatio),
             strfmt("%.4f", result.trafficRatio),
             strfmt("%.1f%%", 100.0 * (1.0 - result.missRatio)),
             strfmt("%.1f%%", 100.0 * (1.0 - result.trafficRatio))});
    }
    table.print(std::cout);

    std::printf("\npaper: on PDP-11, Z8000 and VAX-11 runs the "
                "minimum cache cuts references and bus traffic by "
                "about one third; on System/370 it cuts misses by "
                "only ~16%% and may not be worthwhile.\n");
    return 0;
}
