/**
 * @file
 * The first cache memory: the IBM System/360 Model 85 sector cache
 * (Liptay 1968). This example runs the historical organization
 * (16 KB, 16 fully-associative 1024-byte sectors, 64-byte sub-block
 * transfers) against one System/370-class workload, shows why it
 * performs poorly by post-1984 standards (Section 4.1), and prints
 * the distribution of sub-blocks actually referenced per sector
 * residency — the paper found 72% are never touched.
 */

#include <cstdio>
#include <iostream>

#include "cache/sector_cache.hh"
#include "multi/sweep_runner.hh"
#include "workload/suites.hh"

using namespace occsim;

int
main()
{
    const Suite suite = s370Suite();
    const WorkloadSpec &spec = suite.traces.front();  // FGO1
    std::printf("workload: %s (%s)\n\n", spec.name.c_str(),
                spec.description.c_str());
    VectorTrace trace = buildTrace(spec);

    // The historical machine.
    SectorCache360Model85 sector(suite.profile.wordSize);
    // Run a copy of the trace through a 4-way set-associative cache
    // of the same size and transfer unit for comparison.
    CacheConfig modern;
    modern.netSize = 16 * 1024;
    modern.blockSize = 64;
    modern.subBlockSize = 64;
    modern.assoc = 4;
    modern.wordSize = suite.profile.wordSize;
    Cache set_assoc(modern);

    sector.run(trace);
    trace.reset();
    set_assoc.run(trace);

    std::printf("360/85 sector cache  : %s\n",
                sector.config().fullName().c_str());
    std::printf("  miss ratio %.4f\n", sector.stats().missRatio());
    std::printf("modern comparison    : %s\n",
                modern.fullName().c_str());
    std::printf("  miss ratio %.4f\n\n",
                set_assoc.stats().missRatio());
    std::printf("sector/set-assoc miss ratio: %.2fx (paper: the "
                "360/85 misses ~3x more)\n\n",
                sector.stats().missRatio() /
                    set_assoc.stats().missRatio());

    std::printf("sub-blocks referenced per 1024-byte sector "
                "residency (16 sub-blocks per sector):\n");
    sector.stats().residencyTouched().dump(std::cout);
    std::printf("\nmean %.2f of 16 referenced; %.1f%% never "
                "referenced (paper: 72%%)\n",
                sector.stats().meanSubBlocksTouched(),
                100.0 * sector.stats().neverReferencedFraction());
    return 0;
}
