/**
 * @file
 * Design-space exploration with the sub-block cache model: the
 * paper's central engineering message is that, for a fixed block
 * size, varying the sub-block size trades miss ratio (latency)
 * against traffic ratio (bus load). This example sweeps a full
 * design grid for one architecture suite and reports, for a set of
 * bus-load budgets, the design point with the lowest miss ratio
 * whose traffic ratio fits the budget — i.e. it answers the
 * system designer's actual question.
 *
 *   ./design_space_explorer [arch 0-3] [net_size]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

int
main(int argc, char **argv)
{
    const int arch_index = argc > 1 ? std::atoi(argv[1]) : 0;
    const std::uint32_t net =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1024;
    if (arch_index < 0 || arch_index > 3) {
        std::fprintf(stderr, "arch must be 0 (PDP-11), 1 (Z8000), "
                             "2 (VAX-11) or 3 (System/370)\n");
        return 1;
    }

    const Suite suite = suiteFor(static_cast<Arch>(arch_index));
    std::printf("architecture: %s, net cache size: %u bytes "
                "(parallel sweep engine, %u threads; set "
                "OCCSIM_THREADS to change)\n\n",
                suite.profile.name.c_str(), net,
                globalThreadPool().size());

    const auto configs = paperGrid(net, suite.profile.wordSize);
    const SuiteRun run = runSuite(suite, configs);

    // Print the whole grid, sorted by miss ratio.
    auto sorted = run.average;
    std::sort(sorted.begin(), sorted.end(),
              [](const SweepResult &a, const SweepResult &b) {
                  return a.missRatio < b.missRatio;
              });
    TableWriter grid({"block,sub", "gross", "miss", "traffic"});
    grid.setTitle("full design grid (best miss ratio first)");
    for (const SweepResult &result : sorted) {
        grid.addRow({result.config.shortName(),
                     std::to_string(result.grossBytes),
                     strfmt("%.4f", result.missRatio),
                     strfmt("%.4f", result.trafficRatio)});
    }
    grid.print(std::cout);

    // For each bus budget, the lowest-miss design that fits.
    TableWriter picks({"traffic budget", "best design", "miss",
                       "traffic", "gross"});
    picks.setTitle("\nbest design per bus-traffic budget");
    for (const double budget : {0.1, 0.2, 0.4, 0.8, 1.0}) {
        const SweepResult *best = nullptr;
        for (const SweepResult &result : run.average) {
            if (result.trafficRatio > budget)
                continue;
            if (best == nullptr || result.missRatio < best->missRatio)
                best = &result;
        }
        if (best != nullptr) {
            picks.addRow({strfmt("%.2f", budget),
                          best->config.shortName(),
                          strfmt("%.4f", best->missRatio),
                          strfmt("%.4f", best->trafficRatio),
                          std::to_string(best->grossBytes)});
        } else {
            picks.addRow({strfmt("%.2f", budget), "none fits", "-",
                          "-", "-"});
        }
    }
    picks.print(std::cout);
    return 0;
}
