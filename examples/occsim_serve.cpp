/**
 * @file
 * occsim-serve: the long-lived sweep daemon and its corpus tools.
 *
 * Usage:
 *   occsim-serve ingest <corpus-dir> <trace-file...>
 *       Pack each trace file (otb/din/otd) into the corpus; duplicate
 *       content is detected by hash and stored once. Prints one
 *       "<hash>  <name>  <refs>" line per ingest. Ingestion is a CLI
 *       operation by design: trace decoding treats malformed files as
 *       fatal, which must never be reachable from a socket.
 *   occsim-serve ingest-suite <corpus-dir> [--refs N]
 *       Generate and ingest the built-in PDP-11 workload suite (a
 *       corpus for quickstarts and benches without trace files).
 *   occsim-serve list <corpus-dir>
 *       List corpus entries (hash, name, refs, word size).
 *   occsim-serve start <corpus-dir> [--unix PATH] [--tcp PORT]
 *                      [--cache N] [--dispatchers N] [--threads N]
 *       Serve sweep requests until a client sends the shutdown op.
 *       At least one of --unix/--tcp is required; --tcp 0 picks an
 *       ephemeral port (printed). OCCSIM_MANIFEST works as
 *       everywhere: point it at a path and the daemon's manifest —
 *       including one record per served request — is written at exit.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/server.hh"
#include "trace/corpus.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/thread_pool.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: occsim-serve ingest <corpus-dir> <trace-file...>\n"
        "       occsim-serve ingest-suite <corpus-dir> [--refs N]\n"
        "       occsim-serve list <corpus-dir>\n"
        "       occsim-serve start <corpus-dir> [--unix PATH] "
        "[--tcp PORT]\n"
        "                    [--cache N] [--dispatchers N]\n");
    std::exit(1);
}

std::uint64_t
numArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage();
    std::uint64_t value = 0;
    if (!parseU64(argv[++i], value))
        fatal("bad numeric argument '%s'", argv[i]);
    return value;
}

int
cmdIngest(int argc, char **argv)
{
    if (argc < 4)
        usage();
    TraceCorpus corpus(argv[2]);
    for (int i = 3; i < argc; ++i) {
        const VectorTrace trace = readTrace(argv[i]);
        std::string error;
        const std::string hash = corpus.ingest(trace, &error);
        if (hash.empty())
            fatal("ingest of %s failed: %s", argv[i], error.c_str());
        std::printf("%s  %s  %zu\n", hash.c_str(),
                    trace.name().c_str(), trace.size());
    }
    return 0;
}

int
cmdIngestSuite(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::uint64_t refs = 0;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--refs") == 0)
            refs = numArg(argc, argv, i);
        else
            usage();
    }
    TraceCorpus corpus(argv[2]);
    for (const WorkloadSpec &spec : pdp11Suite().traces) {
        const auto trace = buildTraceShared(spec, refs);
        std::string error;
        const std::string hash = corpus.ingest(*trace, &error);
        if (hash.empty()) {
            fatal("ingest of %s failed: %s", spec.name.c_str(),
                  error.c_str());
        }
        std::printf("%s  %s  %zu\n", hash.c_str(),
                    trace->name().c_str(), trace->size());
    }
    return 0;
}

int
cmdList(int argc, char **argv)
{
    if (argc != 3)
        usage();
    TraceCorpus corpus(argv[2]);
    std::string error;
    const auto all = corpus.entries(&error);
    if (!error.empty())
        fatal("%s", error.c_str());
    for (const CorpusEntry &entry : all) {
        std::printf("%s  %-12s  %10llu refs  word %u\n",
                    entry.hash.c_str(), entry.name.c_str(),
                    static_cast<unsigned long long>(entry.refs),
                    entry.wordSize);
    }
    return 0;
}

int
cmdStart(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string unix_path;
    std::uint64_t tcp_port = 0;
    bool tcp = false;
    serve::ServeOptions options;
    options.corpusDir = argv[2];
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--unix") == 0) {
            if (i + 1 >= argc)
                usage();
            unix_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tcp") == 0) {
            tcp_port = numArg(argc, argv, i);
            tcp = true;
        } else if (std::strcmp(argv[i], "--cache") == 0) {
            options.cacheCapacity =
                static_cast<std::size_t>(numArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--dispatchers") == 0) {
            options.dispatchers =
                static_cast<unsigned>(numArg(argc, argv, i));
        } else {
            usage();
        }
    }
    if (unix_path.empty() && !tcp)
        usage();
    if (tcp_port > 65535)
        fatal("bad TCP port %llu",
              static_cast<unsigned long long>(tcp_port));

    serve::SweepServer server(options);
    std::string error;
    if (!unix_path.empty()) {
        if (!server.startUnix(unix_path, &error))
            fatal("%s", error.c_str());
        inform("occsim-serve: listening on unix:%s",
               unix_path.c_str());
    }
    if (tcp) {
        std::uint16_t bound = 0;
        if (!server.startTcp(static_cast<std::uint16_t>(tcp_port),
                             &bound, &error))
            fatal("%s", error.c_str());
        inform("occsim-serve: listening on tcp:%u", bound);
    }
    inform("occsim-serve: corpus %s, cache %zu cells, %u threads",
           options.corpusDir.c_str(), options.cacheCapacity,
           globalThreadPool().size());

    server.waitForShutdown();
    inform("occsim-serve: shutdown requested, draining");
    server.stop();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    if (std::strcmp(argv[1], "ingest") == 0)
        return cmdIngest(argc, argv);
    if (std::strcmp(argv[1], "ingest-suite") == 0)
        return cmdIngestSuite(argc, argv);
    if (std::strcmp(argv[1], "list") == 0)
        return cmdList(argc, argv);
    if (std::strcmp(argv[1], "start") == 0)
        return cmdStart(argc, argv);
    usage();
}
